"""Randomized baselines, and why the paper insists on determinism.

The classical randomized symmetry breakers converge in ``O(log n)`` rounds
with high probability:

* :func:`luby_mis` — Luby's MIS: every round, undecided vertices draw a
  random priority; local maxima join, neighbors of joiners leave.
* :func:`random_trial_coloring` — trial coloring: every round, uncolored
  vertices propose a uniformly random color from their free palette and keep
  it if no neighbor proposed the same.

Both are *incomparable* to the paper's deterministic ``f(Delta) + log* n``
bounds (faster for huge Delta, slower for small), and — the paper's §1.2.1
point — they are fragile in the self-stabilizing setting: random bits must
live somewhere, and if the generator state sits in fault-prone RAM, "this
prevents the possibility that adversarial faults will manipulate random bits
of the algorithm" fails.  :class:`RandomTrialSelfStabColoring` makes that
executable: its PRNG state is RAM, and a single fault that clones one
vertex's ``(color, rng_state)`` onto a neighbor creates two vertices that
flip *identical* coins forever — a permanent symmetric deadlock that no
amount of fault-free time repairs.  The paper's deterministic algorithms
break the same symmetry instantly through their ROM-resident IDs.
"""

import random

from repro.runtime.csr import numpy_or_none
from repro.selfstab.engine import SelfStabAlgorithm

__all__ = ["luby_mis", "random_trial_coloring", "RandomTrialSelfStabColoring"]


def _batch_np(backend):
    """NumPy when the fast path applies, None for the reference path.

    Randomized baselines expose the repo-wide ``backend`` knob with the usual
    semantics: ``auto`` vectorizes when NumPy is importable, ``batch`` demands
    it, ``reference`` forces the pure-Python loop.  Both paths consume the
    seeded PRNG in the identical call sequence, so results are bit-for-bit
    equal across backends.
    """
    if backend == "reference":
        return None
    np = numpy_or_none()
    if np is None:
        if backend == "batch":
            raise RuntimeError(
                "backend='batch' needs NumPy; install it with `pip install repro[fast]`"
            )
        return None
    return np


def luby_mis(graph, seed, max_rounds=None, backend="auto"):
    """Luby's randomized MIS; returns ``(members, rounds)``.

    Priorities are drawn in ascending vertex order over the undecided set, so
    the run is a pure function of ``(graph, seed)`` — the same property that
    lets the vectorized path replay the exact draw sequence.
    """
    rng = random.Random(seed)
    cap = max_rounds or (8 * max(1, graph.n).bit_length() + 40)
    np = _batch_np(backend)
    if np is not None and hasattr(graph, "csr"):
        return _luby_mis_batch(np, graph, rng, cap)
    undecided = set(graph.vertices())
    members = set()
    rounds = 0
    while undecided and rounds < cap:
        priority = {v: rng.random() for v in sorted(undecided)}
        joiners = {
            v
            for v in undecided
            if all(
                u not in undecided or priority[v] > priority[u]
                for u in graph.neighbors(v)
            )
        }
        members.update(joiners)
        removed = set(joiners)
        for v in joiners:
            removed.update(u for u in graph.neighbors(v) if u in undecided)
        undecided.difference_update(removed)
        rounds += 1
    if undecided:
        raise RuntimeError("Luby did not converge within %d rounds" % cap)
    return members, rounds


def _luby_mis_batch(np, graph, rng, cap):
    """Array rounds with the reference path's exact PRNG consumption."""
    csr = graph.csr()
    n = csr.n
    undecided = np.ones(n, dtype=bool)
    member = np.zeros(n, dtype=bool)
    priority = np.empty(n, dtype=np.float64)
    rounds = 0
    while bool(undecided.any()) and rounds < cap:
        order = np.nonzero(undecided)[0]
        # One rng.random() per undecided vertex, ascending — the reference
        # path's sorted(undecided) comprehension draws identically.
        priority[order] = [rng.random() for _ in range(order.size)]
        own = priority[csr.rows]
        nbr = priority[csr.indices]
        blocked = csr.any_per_vertex(
            undecided[csr.indices] & (own <= nbr)
        )
        joiner = undecided & ~blocked
        member |= joiner
        removed = joiner | (undecided & csr.any_per_vertex(joiner[csr.indices]))
        undecided &= ~removed
        rounds += 1
    if bool(undecided.any()):
        raise RuntimeError("Luby did not converge within %d rounds" % cap)
    return set(np.nonzero(member)[0].tolist()), rounds


def random_trial_coloring(graph, seed, palette=None, max_rounds=None, backend="auto"):
    """Randomized trial (Delta+1)-coloring; returns ``(colors, rounds)``."""
    rng = random.Random(seed)
    if palette is None:
        palette = graph.max_degree + 1
    cap = max_rounds or (8 * max(1, graph.n).bit_length() + 40)
    np = _batch_np(backend)
    if np is not None and hasattr(graph, "csr"):
        return _random_trial_batch(np, graph, rng, palette, cap)
    colors = [None] * graph.n
    rounds = 0
    while any(c is None for c in colors) and rounds < cap:
        proposals = {}
        for v in graph.vertices():
            if colors[v] is not None:
                continue
            taken = {colors[u] for u in graph.neighbors(v) if colors[u] is not None}
            free = [c for c in range(palette) if c not in taken]
            proposals[v] = rng.choice(free)
        for v, proposal in proposals.items():
            clash = any(
                proposals.get(u) == proposal or colors[u] == proposal
                for u in graph.neighbors(v)
            )
            if not clash:
                colors[v] = proposal
        rounds += 1
    if any(c is None for c in colors):
        raise RuntimeError("trial coloring did not converge within %d rounds" % cap)
    return colors, rounds


def _uniform_randbelow(np, rng, count, bound):
    """``count`` draws of ``rng._randbelow(bound)`` as one array op.

    CPython's ``_randbelow`` reads ``bound.bit_length()``-wide slices off the
    Mersenne-Twister word stream and rejection-samples; NumPy's
    ``RandomState`` runs the *same* MT19937 core, so mirroring the state
    reproduces the raw word stream exactly.  With one shared ``bound`` the
    word-to-draw assignment is alignment-free — the ``i``-th accepted word
    is the ``i``-th draw — and the Python generator is advanced by exactly
    the number of words consumed, keeping later draws in sequence.
    """
    bits = bound.bit_length()
    version, internal, gauss = rng.getstate()
    key = np.asarray(internal[:-1], dtype=np.uint32)
    shift = np.uint32(32 - bits)
    need = (count * (1 << bits)) // max(1, bound) + 64
    mirror = np.random.RandomState()
    while True:
        mirror.set_state(("MT19937", key, internal[-1], 0, 0.0))
        values = (
            mirror.randint(0, 2 ** 32, size=need, dtype=np.uint32) >> shift
        ).astype(np.int64)
        accepted = np.nonzero(values < bound)[0]
        if accepted.size >= count:
            break
        need *= 2
    consumed = int(accepted[count - 1]) + 1
    mirror.set_state(("MT19937", key, internal[-1], 0, 0.0))
    mirror.randint(0, 2 ** 32, size=consumed, dtype=np.uint32)
    state = mirror.get_state()
    rng.setstate(
        (version, tuple(int(x) for x in state[1]) + (int(state[2]),), gauss)
    )
    return values[accepted[:count]]


def _random_trial_batch(np, graph, rng, palette, cap):
    """Array rounds; ``rng.randrange(k)`` consumes exactly like ``rng.choice``
    of a ``k``-element free list (both are one ``_randbelow(k)`` call), so the
    draw sequence — and therefore every proposal — matches the reference."""
    csr = graph.csr()
    n = csr.n
    colors = np.full(n, -1, dtype=np.int64)
    proposal_of = np.full(n, -2, dtype=np.int64)  # -2: no proposal this round
    rounds = 0
    while bool((colors < 0).any()) and rounds < cap:
        uncolored = colors < 0
        actors = np.nonzero(uncolored)[0]  # ascending = graph.vertices() order
        count = actors.size
        compact = np.cumsum(uncolored) - 1
        sel = uncolored[csr.rows]
        nbrs = csr.indices[sel]
        owner = compact[csr.rows[sel]]
        if bool((~uncolored).any()):
            occupied = np.zeros((count, palette), dtype=bool)
            nbr_color = colors[nbrs]
            seen = nbr_color >= 0
            occupied[owner[seen], nbr_color[seen]] = True
            free_count = palette - occupied.sum(axis=1)
        else:
            # Nobody is colored yet (always true in round one): every free
            # list is the full palette, no occupancy matrix needed.
            occupied = None
            free_count = None
        if occupied is None:
            proposal = _uniform_randbelow(np, rng, count, palette)
        else:
            low = int(free_count.min())
            if low == int(free_count.max()) and low > 0:
                picks = _uniform_randbelow(np, rng, count, low)
            else:
                randbelow = rng._randbelow
                pick_list = []
                for k in free_count.tolist():
                    if k == 0:
                        rng.choice([])  # the reference path's exact IndexError
                    pick_list.append(randbelow(k))
                picks = np.asarray(pick_list, dtype=np.int64)
            # The pick indexes the sorted free list; translate to the color.
            free_rank = np.cumsum(~occupied, axis=1)
            hit = ~occupied & (free_rank == (picks + 1)[:, None])
            proposal = np.argmax(hit, axis=1)
        proposal_of[:] = -2
        proposal_of[actors] = proposal
        own = proposal_of[csr.rows[sel]]
        clash_slots = (proposal_of[nbrs] == own) | (colors[nbrs] == own)
        accept = np.bincount(owner[clash_slots], minlength=count) == 0
        colors[actors[accept]] = proposal[accept]
        rounds += 1
    if bool((colors < 0).any()):
        raise RuntimeError("trial coloring did not converge within %d rounds" % cap)
    return colors.tolist(), rounds


class RandomTrialSelfStabColoring(SelfStabAlgorithm):
    """Self-stabilizing trial coloring whose PRNG state lives in RAM.

    RAM: ``(color, rng_counter, rng_salt)``.  A vertex in conflict re-draws
    a free color pseudo-randomly from ``hash((salt, counter, color))`` and
    increments the counter — note the draw deliberately involves *no ROM
    identity*: all its entropy (the salt) is fault-prone RAM, exactly the
    design the paper warns about.  With distinct salts the algorithm
    converges quickly (coin flips are independent); but one fault that
    clones a vertex's RAM onto a neighbor makes the pair flip *identical*
    coins forever — a permanent symmetric deadlock no amount of fault-free
    time repairs.
    """

    name = "selfstab-random-trial"

    def __init__(self, n_bound, delta_bound):
        super().__init__(n_bound, delta_bound)
        self.palette = delta_bound + 1

    def fresh_ram(self, vertex):
        return (0, 0, vertex)  # color, rng counter, rng salt (RAM entropy)

    def visible(self, vertex, ram):
        return ram

    @staticmethod
    def _sanitize(ram):
        if (
            isinstance(ram, tuple)
            and len(ram) == 3
            and all(isinstance(field, int) for field in ram)
        ):
            return ram
        return (0, 0, 0)

    def transition(self, vertex, ram, neighbor_visibles):
        color, counter, salt = self._sanitize(ram)
        color %= self.palette
        neighbor_colors = {
            self._sanitize(nv)[0] % self.palette for nv in neighbor_visibles
        }
        if color not in neighbor_colors:
            return (color, counter, salt)
        # Conflicted: flip a RAM-seeded coin whether to act, then re-draw a
        # free color from RAM-resident randomness only.  (hash of an int
        # tuple is deterministic across processes.)
        rng = random.Random(hash((salt, counter, color)))
        if rng.random() < 0.5:
            return (color, counter + 1, salt)  # stand still this round
        free = [c for c in range(self.palette) if c not in neighbor_colors]
        draw = free[rng.randrange(len(free))]
        return (draw, counter + 1, salt)

    def is_legal(self, graph, rams):
        for v in graph.vertices():
            color = self._sanitize(rams.get(v))[0] % self.palette
            for u in graph.neighbors(v):
                if self._sanitize(rams[u])[0] % self.palette == color:
                    return False
        return True

    def final_colors(self, graph, rams):
        """Colors in ``[0, Delta]`` extracted from the RAM states."""
        return {
            v: self._sanitize(rams[v])[0] % self.palette for v in graph.vertices()
        }
