"""The defective-coloring divide-and-conquer (Delta+1)-coloring of [5, 44, 9].

This is the *non-locally-iterative* ``O(Delta + log* n)`` state of the art
the paper's introduction contrasts itself with: Barenboim–Elkin (STOC'09)
and Kuhn (SPAA'09) reached linear-in-Delta time by decomposing the graph —
compute a ``p``-defective coloring with ``p = Delta/4``, recurse *in
parallel* on the color classes (each induces a subgraph of maximum degree
``<= defect``), and then merge the per-class colorings sequentially: class
by class, each class's color levels re-pick greedily from the final palette
``[0, Delta]`` avoiding already-committed neighbors.

The recursion makes it decidedly not locally-iterative — mid-run the global
"coloring" is a patchwork of per-subgraph states, nothing like a proper
coloring of ``G`` — which is exactly the structural price the paper's AG
algorithm avoids.  We implement it as the head-to-head baseline: same
asymptotics, different structure.

Round accounting: vertex-disjoint recursive calls run in parallel (their
round counts max, not add); the defective stages and the sequential merge
sweeps add up.  Compared with [9], constants are larger and the ``log*``
stage recurs per level (the original shares one Linial run across levels);
the shape — linear in Delta — is preserved and benchmarked.
"""

from repro.analysis.invariants import coloring_defect, is_proper_coloring
from repro.core.reductions import StandardColorReduction
from repro.defective.vertex import DefectiveLinialColoring
from repro.linial.core import LinialColoring
from repro.runtime.csr import numpy_or_none

__all__ = ["BEKResult", "bek_delta_plus_one"]

_BASE_DELTA = 4


class BEKResult:
    """Final coloring plus the parallel-round accounting of the recursion."""

    def __init__(self, colors, rounds, depth):
        self.colors = colors
        self.rounds = rounds
        self.depth = depth

    @property
    def num_colors(self):
        """Distinct colors used (at most Delta + 1)."""
        return len(set(self.colors))

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "colors": list(self.colors),
            "num_colors": self.num_colors,
            "rounds": self.rounds,
            "depth": self.depth,
        }

    def __repr__(self):
        return "BEKResult(colors=%d, rounds=%d, depth=%d)" % (
            self.num_colors,
            self.rounds,
            self.depth,
        )


def _make_engine(graph, backend):
    from repro.runtime.backends import resolve_backend

    return resolve_backend("engine", backend)(graph)


def _base_case(graph, backend):
    """Small Delta: Linial + standard reduction (both O(Delta^2)-cheap here)."""
    if graph.n == 0:
        return [], 0
    engine = _make_engine(graph, backend)
    linial = LinialColoring()
    first = engine.run(linial, list(range(graph.n)))
    reduction = StandardColorReduction()
    second = engine.run(
        reduction, first.int_colors, in_palette_size=linial.out_palette_size
    )
    return second.int_colors, first.rounds_used + second.rounds_used


def _recursive_color(graph, depth, parent_delta=None, backend="auto"):
    """Proper (Delta_G + 1)-coloring of ``graph``; returns (colors, rounds, depth)."""
    delta = graph.max_degree
    stuck = parent_delta is not None and delta >= parent_delta
    if delta <= _BASE_DELTA or graph.n <= _BASE_DELTA + 2 or stuck:
        colors, rounds = _base_case(graph, backend)
        return colors, rounds, depth

    # Stage 1: p-defective coloring with p = Delta / 4.
    tolerance = max(1, delta // 4)
    engine = _make_engine(graph, backend)
    defective = DefectiveLinialColoring(tolerance)
    dres = engine.run(defective, list(range(graph.n)))
    class_of = dres.int_colors
    class_ids = sorted(set(class_of))
    rounds = dres.rounds_used

    # Stage 2: recurse on the classes in parallel.
    np = None if backend == "reference" else numpy_or_none()
    sub_results = {}
    deepest = depth
    max_sub_rounds = 0
    for cid in class_ids:
        members = [v for v in graph.vertices() if class_of[v] == cid]
        if np is not None:
            subgraph, index = _induced_subgraph(np, graph, members)
        else:
            subgraph, index = graph.subgraph(members)
        sub_colors, sub_rounds, sub_depth = _recursive_color(
            subgraph, depth + 1, parent_delta=delta, backend=backend
        )
        sub_results[cid] = (members, index, sub_colors)
        max_sub_rounds = max(max_sub_rounds, sub_rounds)
        deepest = max(deepest, sub_depth)
    rounds += max_sub_rounds

    # Stage 3: sequential merge — class by class, level by level, greedy
    # picks from [0, Delta] avoiding committed neighbors.
    if np is not None:
        return _merge_batch(np, graph, class_ids, sub_results, rounds, deepest)
    final = [None] * graph.n
    for cid in class_ids:
        members, index, sub_colors = sub_results[cid]
        levels = (max(sub_colors) + 1) if sub_colors else 0
        for level in range(levels):
            # One synchronous round: this class's level-``level`` vertices act.
            for v in members:
                if sub_colors[index[v]] != level:
                    continue
                taken = {
                    final[u] for u in graph.neighbors(v) if final[u] is not None
                }
                color = 0
                while color in taken:
                    color += 1
                final[v] = color
            rounds += 1
    return final, rounds, deepest


def _induced_subgraph(np, graph, members):
    """``graph.subgraph(members)`` with the edge filter done on CSR arrays.

    Produces the identical :class:`StaticGraph` (the constructor sorts and
    dedups) and the identical index map; only the per-edge Python filter —
    the recursion's dominant cost on large graphs — is vectorized.
    """
    from repro.runtime.graph import StaticGraph

    ordered = sorted(set(members))
    index = {v: i for i, v in enumerate(ordered)}
    csr = graph.csr()
    mask = np.zeros(graph.n, dtype=bool)
    mask[np.asarray(ordered, dtype=np.int64)] = True
    compact = np.cumsum(mask) - 1
    keep = mask[csr.edge_u] & mask[csr.edge_v]
    sub_u = compact[csr.edge_u[keep]]
    sub_v = compact[csr.edge_v[keep]]
    edges = list(zip(sub_u.tolist(), sub_v.tolist()))
    ids = [graph.ids[v] for v in ordered]
    return StaticGraph(len(ordered), edges, ids=ids), index


def _merge_batch(np, graph, class_ids, sub_results, rounds, deepest):
    """Vectorized stage 3: identical sweeps, one occupancy matrix per round.

    Vertices acting in one (class, level) round are pairwise non-adjacent —
    the sub-coloring is proper on the induced class subgraph — so the
    sequential member loop and the parallel repick commit identical colors,
    and the round accounting (one round per class level) is unchanged.
    """
    csr = graph.csr()
    palette = graph.max_degree + 1
    final = np.full(graph.n, -1, dtype=np.int64)
    for cid in class_ids:
        members, index, sub_colors = sub_results[cid]
        members_arr = np.asarray(members, dtype=np.int64)
        level_of = np.asarray(
            [sub_colors[index[v]] for v in members], dtype=np.int64
        )
        levels = (max(sub_colors) + 1) if sub_colors else 0
        for level in range(levels):
            acting = members_arr[level_of == level]
            count = acting.size
            if count:
                mask = np.zeros(graph.n, dtype=bool)
                mask[acting] = True
                compact = np.cumsum(mask) - 1
                sel = mask[csr.rows]
                nbr_color = final[csr.indices[sel]]
                owner = compact[csr.rows[sel]]
                seen = nbr_color >= 0
                occupied = np.zeros((count, palette), dtype=bool)
                occupied[owner[seen], nbr_color[seen]] = True
                final[acting] = np.argmin(occupied, axis=1)
            rounds += 1
    return final.tolist(), rounds, deepest


def bek_delta_plus_one(graph, backend="auto"):
    """The [5, 44, 9]-style (Delta+1)-coloring; returns a :class:`BEKResult`.

    The output is verified proper and within ``[0, Delta]`` before returning.
    ``backend`` selects the execution tier for every internal engine run and
    the merge sweeps (``auto``/``batch``/``numba``/``reference``); results
    are bit-identical across backends.
    """
    colors, rounds, depth = _recursive_color(graph, 0, backend=backend)
    if graph.n:
        assert is_proper_coloring(graph, colors)
        assert max(colors) <= graph.max_degree
        assert coloring_defect(graph, colors) == 0
    return BEKResult(colors, rounds, depth)
