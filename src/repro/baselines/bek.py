"""The defective-coloring divide-and-conquer (Delta+1)-coloring of [5, 44, 9].

This is the *non-locally-iterative* ``O(Delta + log* n)`` state of the art
the paper's introduction contrasts itself with: Barenboim–Elkin (STOC'09)
and Kuhn (SPAA'09) reached linear-in-Delta time by decomposing the graph —
compute a ``p``-defective coloring with ``p = Delta/4``, recurse *in
parallel* on the color classes (each induces a subgraph of maximum degree
``<= defect``), and then merge the per-class colorings sequentially: class
by class, each class's color levels re-pick greedily from the final palette
``[0, Delta]`` avoiding already-committed neighbors.

The recursion makes it decidedly not locally-iterative — mid-run the global
"coloring" is a patchwork of per-subgraph states, nothing like a proper
coloring of ``G`` — which is exactly the structural price the paper's AG
algorithm avoids.  We implement it as the head-to-head baseline: same
asymptotics, different structure.

Round accounting: vertex-disjoint recursive calls run in parallel (their
round counts max, not add); the defective stages and the sequential merge
sweeps add up.  Compared with [9], constants are larger and the ``log*``
stage recurs per level (the original shares one Linial run across levels);
the shape — linear in Delta — is preserved and benchmarked.
"""

from repro.analysis.invariants import coloring_defect, is_proper_coloring
from repro.core.reductions import StandardColorReduction
from repro.defective.vertex import DefectiveLinialColoring
from repro.linial.core import LinialColoring
from repro.runtime.engine import ColoringEngine

__all__ = ["BEKResult", "bek_delta_plus_one"]

_BASE_DELTA = 4


class BEKResult:
    """Final coloring plus the parallel-round accounting of the recursion."""

    def __init__(self, colors, rounds, depth):
        self.colors = colors
        self.rounds = rounds
        self.depth = depth

    @property
    def num_colors(self):
        """Distinct colors used (at most Delta + 1)."""
        return len(set(self.colors))

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "colors": list(self.colors),
            "num_colors": self.num_colors,
            "rounds": self.rounds,
            "depth": self.depth,
        }

    def __repr__(self):
        return "BEKResult(colors=%d, rounds=%d, depth=%d)" % (
            self.num_colors,
            self.rounds,
            self.depth,
        )


def _base_case(graph):
    """Small Delta: Linial + standard reduction (both O(Delta^2)-cheap here)."""
    if graph.n == 0:
        return [], 0
    engine = ColoringEngine(graph)
    linial = LinialColoring()
    first = engine.run(linial, list(range(graph.n)))
    reduction = StandardColorReduction()
    second = engine.run(
        reduction, first.int_colors, in_palette_size=linial.out_palette_size
    )
    return second.int_colors, first.rounds_used + second.rounds_used


def _recursive_color(graph, depth, parent_delta=None):
    """Proper (Delta_G + 1)-coloring of ``graph``; returns (colors, rounds, depth)."""
    delta = graph.max_degree
    stuck = parent_delta is not None and delta >= parent_delta
    if delta <= _BASE_DELTA or graph.n <= _BASE_DELTA + 2 or stuck:
        colors, rounds = _base_case(graph)
        return colors, rounds, depth

    # Stage 1: p-defective coloring with p = Delta / 4.
    tolerance = max(1, delta // 4)
    engine = ColoringEngine(graph)
    defective = DefectiveLinialColoring(tolerance)
    dres = engine.run(defective, list(range(graph.n)))
    class_of = dres.int_colors
    class_ids = sorted(set(class_of))
    rounds = dres.rounds_used

    # Stage 2: recurse on the classes in parallel.
    sub_results = {}
    deepest = depth
    max_sub_rounds = 0
    for cid in class_ids:
        members = [v for v in graph.vertices() if class_of[v] == cid]
        subgraph, index = graph.subgraph(members)
        sub_colors, sub_rounds, sub_depth = _recursive_color(
            subgraph, depth + 1, parent_delta=delta
        )
        sub_results[cid] = (members, index, sub_colors)
        max_sub_rounds = max(max_sub_rounds, sub_rounds)
        deepest = max(deepest, sub_depth)
    rounds += max_sub_rounds

    # Stage 3: sequential merge — class by class, level by level, greedy
    # picks from [0, Delta] avoiding committed neighbors.
    final = [None] * graph.n
    for cid in class_ids:
        members, index, sub_colors = sub_results[cid]
        levels = (max(sub_colors) + 1) if sub_colors else 0
        for level in range(levels):
            # One synchronous round: this class's level-``level`` vertices act.
            for v in members:
                if sub_colors[index[v]] != level:
                    continue
                taken = {
                    final[u] for u in graph.neighbors(v) if final[u] is not None
                }
                color = 0
                while color in taken:
                    color += 1
                final[v] = color
            rounds += 1
    return final, rounds, deepest


def bek_delta_plus_one(graph):
    """The [5, 44, 9]-style (Delta+1)-coloring; returns a :class:`BEKResult`.

    The output is verified proper and within ``[0, Delta]`` before returning.
    """
    colors, rounds, depth = _recursive_color(graph, 0)
    if graph.n:
        assert is_proper_coloring(graph, colors)
        assert max(colors) <= graph.max_degree
        assert coloring_defect(graph, colors) == 0
    return BEKResult(colors, rounds, depth)
