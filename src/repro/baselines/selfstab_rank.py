"""A classical O(n)-stabilization self-stabilizing coloring baseline.

Representative of the pre-paper state of the art surveyed by Guellati and
Kheddouci [29]: on a conflict, the lower-ID endpoint yields and greedily
picks the smallest color absent from its neighborhood.  Correct, simple —
and slow: a single fault at the head of a path can trigger a linear cascade
of recolorings, so stabilization time is Theta(n) in the worst case.  The
self-stabilization benchmarks race it against the paper's
O(Delta + log* n) algorithms.
"""

from repro.selfstab.engine import SelfStabAlgorithm
from repro.selfstab.kernels import ColorBatchOps

__all__ = ["RankGreedySelfStabColoring"]


class RankGreedySelfStabColoring(ColorBatchOps, SelfStabAlgorithm):
    """Conflict -> lower-ID endpoint re-picks greedily. Theta(n) stabilization."""

    name = "selfstab-rank-greedy"

    # visible() broadcasts (id, color), so the CONGEST meter needs the
    # original vertex ids next to the color column (see BatchSelfStabEngine).
    batch_payload_wants_ids = True

    def __init__(self, n_bound, delta_bound):
        super().__init__(n_bound, delta_bound)
        self.palette = delta_bound + 1

    def fresh_ram(self, vertex):
        return 0

    def visible(self, vertex, ram):
        # Broadcast (id, color); IDs are ROM so they are always truthful.
        return (vertex, ram if isinstance(ram, int) else -1)

    def transition(self, vertex, ram, neighbor_visibles):
        color = ram if isinstance(ram, int) and 0 <= ram < self.palette else -1
        conflict_with_higher = any(
            c == color and other_id > vertex for other_id, c in neighbor_visibles
        )
        if color == -1 or conflict_with_higher:
            taken = {c for _, c in neighbor_visibles}
            for candidate in range(self.palette):
                if candidate not in taken:
                    return candidate
        return color

    def is_legal(self, graph, rams):
        for v in graph.vertices():
            color = rams.get(v)
            if not isinstance(color, int) or not (0 <= color < self.palette):
                return False
        for v in graph.vertices():
            for u in graph.neighbors(v):
                if rams[u] == rams[v]:
                    return False
        return True

    def final_colors(self, graph, rams):
        """Colors in ``[0, Delta]`` extracted from a legal state."""
        return {v: rams[v] for v in graph.vertices()}

    def stabilization_bound(self):
        return 4 * self.n_bound + 16

    # -- batch protocol (see repro.selfstab.fast_engine) -------------------------
    #
    # One int64 color column.  Non-int garbage encodes to the sentinel, which
    # (like the scalar path's broadcast -1) lies outside [0, palette) and
    # equals no valid color, so validity, conflict, and taken-set tests all
    # agree with the scalar transition.  Bool RAM is *exotic*: the scalar
    # path keeps the bool object in RAM and charges it 1 payload bit, which a
    # plain int column cannot reproduce — those rounds run scalar.

    def batch_encode(self, raws, np):
        encoded = ColorBatchOps.batch_encode(self, raws, np)
        if encoded is None:
            return None
        state, noncanon = encoded
        if any(isinstance(raw, bool) for raw in noncanon.values()):
            return None
        return state, noncanon

    def batch_encode_one(self, raw):
        if isinstance(raw, bool):
            return None
        return ColorBatchOps.batch_encode_one(self, raw)

    def batch_payload_max(self, state, include, np, ids=None):
        """Max bits of the (id, color) pair over included canonical vertices."""
        values = state[0][include]
        if values.size == 0:
            return 0
        pair = _batch_bit_length(values, np) + _batch_bit_length(ids[include], np) + 2
        return int(pair.max())

    def transition_batch(self, state, ctx):
        np, csr = ctx.np, ctx.csr
        (colors,) = state
        ids = ctx.vertices
        palette = self.palette
        valid = (colors >= 0) & (colors < palette)
        color_eff = np.where(valid, colors, -1)
        own = color_eff[csr.rows]
        nbr_vis = colors[csr.indices]
        conflict = csr.any_per_vertex(
            (nbr_vis == own) & (own >= 0) & (ids[csr.indices] > ids[csr.rows])
        )
        repick = ~valid | conflict
        new = color_eff.copy()
        count = int(repick.sum())
        if count:
            compact = np.cumsum(repick) - 1
            occupied = np.zeros((count, palette), dtype=bool)
            sel = repick[csr.rows]
            taken = nbr_vis[sel]
            owner = compact[csr.rows[sel]]
            in_palette = (taken >= 0) & (taken < palette)
            occupied[owner[in_palette], taken[in_palette]] = True
            picked = np.argmin(occupied, axis=1)
            # A full row mirrors the scalar fall-through (keep the color);
            # impossible while degrees respect the Delta bound.
            full = occupied.all(axis=1)
            new[repick] = np.where(full, color_eff[repick], picked)
        return (new,), new != colors

    def batch_is_legal(self, state, csr, np):
        """Vector twin of :meth:`is_legal` over the packed color column."""
        (colors,) = state
        if colors.size and not bool(
            ((colors >= 0) & (colors < self.palette)).all()
        ):
            return False
        if csr.m and bool((colors[csr.edge_u] == colors[csr.edge_v]).any()):
            return False
        return True


def _batch_bit_length(values, np):
    """Vectorized ``abs(x).bit_length()`` for int64 arrays (exact)."""
    arr = np.abs(values)
    out = np.zeros(arr.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        high = (arr >> shift) != 0
        out[high] += shift
        arr = np.where(high, arr >> shift, arr)
    return out + (arr != 0)
