"""A classical O(n)-stabilization self-stabilizing coloring baseline.

Representative of the pre-paper state of the art surveyed by Guellati and
Kheddouci [29]: on a conflict, the lower-ID endpoint yields and greedily
picks the smallest color absent from its neighborhood.  Correct, simple —
and slow: a single fault at the head of a path can trigger a linear cascade
of recolorings, so stabilization time is Theta(n) in the worst case.  The
self-stabilization benchmarks race it against the paper's
O(Delta + log* n) algorithms.
"""

from repro.selfstab.engine import SelfStabAlgorithm

__all__ = ["RankGreedySelfStabColoring"]


class RankGreedySelfStabColoring(SelfStabAlgorithm):
    """Conflict -> lower-ID endpoint re-picks greedily. Theta(n) stabilization."""

    name = "selfstab-rank-greedy"

    def __init__(self, n_bound, delta_bound):
        super().__init__(n_bound, delta_bound)
        self.palette = delta_bound + 1

    def fresh_ram(self, vertex):
        return 0

    def visible(self, vertex, ram):
        # Broadcast (id, color); IDs are ROM so they are always truthful.
        return (vertex, ram if isinstance(ram, int) else -1)

    def transition(self, vertex, ram, neighbor_visibles):
        color = ram if isinstance(ram, int) and 0 <= ram < self.palette else -1
        conflict_with_higher = any(
            c == color and other_id > vertex for other_id, c in neighbor_visibles
        )
        if color == -1 or conflict_with_higher:
            taken = {c for _, c in neighbor_visibles}
            for candidate in range(self.palette):
                if candidate not in taken:
                    return candidate
        return color

    def is_legal(self, graph, rams):
        for v in graph.vertices():
            color = rams.get(v)
            if not isinstance(color, int) or not (0 <= color < self.palette):
                return False
        for v in graph.vertices():
            for u in graph.neighbors(v):
                if rams[u] == rams[v]:
                    return False
        return True

    def final_colors(self, graph, rams):
        """Colors in ``[0, Delta]`` extracted from a legal state."""
        return {v: rams[v] for v in graph.vertices()}

    def stabilization_bound(self):
        return 4 * self.n_bound + 16
