"""The Kuhn–Wattenhofer / Szegedy–Vishwanathan color reduction.

This is the locally-iterative state of the art the paper supersedes — the
``O(Delta log Delta + log* n)`` bound of Table 1 — included both as a
benchmark baseline and because its structure explains the SV barrier: each
*halving* of the palette costs ``Theta(Delta)`` rounds, and ``log Delta``
halvings separate ``Delta^2`` from ``Delta + 1``.

One halving iteration: partition the palette ``[m]`` into blocks of
``2 * (Delta + 1)`` consecutive colors.  All blocks in parallel run the
standard color reduction *inside the block* (``Delta + 1`` sub-rounds, each
eliminating the block's top color), compressing each block to ``Delta + 1``
colors.  At the end of the iteration colors are renumbered into
``ceil(m / (2N)) * N`` consecutive values, i.e. roughly ``m / 2``.

The rule is round-dependent (each sub-round activates one color class per
block) but still locally-iterative, and it runs in SET-LOCAL since only the
set of neighbor colors matters.
"""

from repro.runtime.algorithm import LocallyIterativeColoring

__all__ = ["KuhnWattenhoferReduction"]


class KuhnWattenhoferReduction(LocallyIterativeColoring):
    """Proper ``m``-coloring to ``Delta+1`` in ``O(Delta log(m / Delta))`` rounds."""

    name = "kuhn-wattenhofer"
    maintains_proper = True
    uniform_step = False

    def __init__(self):
        super().__init__()
        self.block = None  # N = Delta + 1: the post-halving block palette
        self.palette_schedule = None  # palette size at the start of iteration i

    def configure(self, info):
        super().configure(info)
        n_colors = info.max_degree + 1
        self.block = n_colors
        schedule = [max(info.in_palette_size, n_colors)]
        while schedule[-1] > n_colors:
            m = schedule[-1]
            blocks = -(-m // (2 * n_colors))  # ceil division
            schedule.append(min(m, blocks * n_colors))
            if schedule[-1] == schedule[-2]:
                # m <= 2N compresses to N directly.
                schedule[-1] = n_colors
        self.palette_schedule = schedule

    @property
    def out_palette_size(self):
        self._require_configured()
        return self.block

    @property
    def rounds_bound(self):
        """(#iterations) * N sub-rounds: Theta(Delta log(m / Delta))."""
        self._require_configured()
        return (len(self.palette_schedule) - 1) * self.block

    def step(self, round_index, color, neighbor_colors):
        n_colors = self.block
        iteration = round_index // n_colors
        sub_round = round_index % n_colors
        if iteration >= len(self.palette_schedule) - 1:
            return color

        two_n = 2 * n_colors
        block_index, local = divmod(color, two_n)
        acting_local = two_n - 1 - sub_round
        if local == acting_local and local >= n_colors:
            base = block_index * two_n
            taken = {c - base for c in neighbor_colors if base <= c < base + two_n}
            local = min(c for c in range(n_colors) if c not in taken)
        if sub_round == n_colors - 1:
            # End of the iteration: renumber into compact N-sized blocks.
            return block_index * n_colors + local
        return block_index * two_n + local

    def is_final(self, color):
        return False  # progress is schedule-driven; run the full bound

    @property
    def uniform_after(self):
        """Past the halving schedule the step is the identity (uniform tail)."""
        self._require_configured()
        return (len(self.palette_schedule) - 1) * self.block

    # -- batch protocol (see repro.runtime.fast_engine) -------------------------
    #
    # State: the current color as a single int64 array.  Each sub-round only
    # the acting local class of each 2N-block repicks, off a boolean
    # occupancy matrix scattered from the same-block neighbor colors (only
    # locals below N matter: candidates come from [0, N)).  Membership is
    # existence-only, so the kernel is identical in LOCAL and SET-LOCAL.

    def batch_encode_initial(self, initial):
        """Vectorized ``encode_initial`` (identity, like the scalar path)."""
        return (initial,)

    def step_batch(self, round_index, state, csr, visibility):
        """Vectorized ``step``: per-block greedy repick of the acting class."""
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        (colors,) = state
        n_colors = self.block
        iteration = round_index // n_colors
        sub_round = round_index % n_colors
        if iteration >= len(self.palette_schedule) - 1:
            return state

        two_n = 2 * n_colors
        block_index = colors // two_n
        local = colors % two_n
        acting_local = two_n - 1 - sub_round
        acting = local == acting_local  # acting_local >= N always holds
        count = int(acting.sum())
        new_local = local
        if count:
            compact = np.cumsum(acting) - 1
            occupied = np.zeros((count, n_colors), dtype=bool)
            slot_sel = acting[csr.rows]
            neighbor = csr.gather(colors)[slot_sel]
            owner_rows = csr.rows[slot_sel]
            base = block_index[owner_rows] * two_n
            nbr_local = neighbor - base
            in_block = (nbr_local >= 0) & (nbr_local < n_colors)
            occupied[compact[owner_rows[in_block]], nbr_local[in_block]] = True
            if bool(occupied.all(axis=1).any()):
                # The scalar step's min() over an empty candidate range —
                # impossible for a proper input; replay for the exact error.
                from repro.runtime.fast_engine import scalar_replay_round

                scalar_replay_round(
                    self, round_index, colors.tolist(), csr, visibility
                )
                raise AssertionError(
                    "batch KW kernel rejected a round the scalar step accepts"
                )
            new_local = local.copy()
            new_local[acting] = np.argmin(occupied, axis=1)
        if sub_round == n_colors - 1:
            return (block_index * n_colors + new_local,)
        if count == 0:
            return state
        return (block_index * two_n + new_local,)

    def batch_is_final(self, state):
        """Vectorized ``is_final`` (never final, like the scalar path)."""
        from repro.runtime.csr import numpy_or_none

        np = numpy_or_none()
        return np.zeros(state[0].shape[0], dtype=bool)

    def batch_decode_final(self, state):
        """Vectorized ``decode_final`` (identity, like the scalar path)."""
        return state[0]

    def batch_to_scalar(self, state):
        """The state as the scalar engine's plain-int color list."""
        return state[0].tolist()
