"""Partition-aware round execution over memory-mapped CSR shards.

One :class:`PartitionRunner` serves one stage run of the out-of-core engine
(:mod:`repro.oocore.engine`): every worker owns one shard of a
:class:`~repro.oocore.store.ShardedCSRGraph`, runs the stage's existing
``step_batch`` kernel on its local CSR slice, and the only cross-shard data
that moves between rounds is each shard's **halo** — the colors of its
boundary neighbors.

Data planes
-----------
* **state planes** — double-buffered per-component int64 memmap files
  (:class:`~repro.oocore.store.PlaneStore`).  Workers are forked, the files
  are MAP_SHARED, so shard-disjoint writes are coherent through the page
  cache without any result pickling.
* **halo planes** — per-shard ``(ncomp, h)`` buffers the parent fills from
  the source plane before dispatching a round.  In pool mode they live in
  ``multiprocessing.shared_memory`` segments owned by the PR-6
  :class:`~repro.parallel.shm.SegmentManager` (same prefix, same atexit
  backstop, workers attach and never unlink — a killed worker cannot leak
  ``/dev/shm`` entries); inline they are plain arrays.  Either way the
  gathered bytes are the metered boundary exchange.

The parent's ``run_round`` is the synchronous-round barrier: it returns
only when every shard finished, with the aggregated per-round counters
(``changed``, ``finalized``, ``all_final``, ``conflicts``, I/O and halo
bytes).
"""

import time

from repro.obs import core as obs
from repro.obs import flight
from repro.parallel.shm import SegmentManager, shared_memory_or_none
from repro.runtime.csr import numpy_or_none

__all__ = ["PartitionRunner"]

#: Per-round barrier timeout (seconds) in pool mode; a worker stuck past it
#: gets the pool terminated and a RuntimeError raised (segments released by
#: ``close``).
_DEFAULT_TIMEOUT = 600.0

_WORKER_CTX = {}


class _ShardContext:
    """Everything one process needs to step shards: graph, planes, halo views.

    Lives in the parent for inline execution and (re-created by
    ``_init_worker``) in every pool worker.  ``cache_bytes`` bounds a tiny
    LRU of built local CSRs — reused across rounds when the budget allows,
    re-streamed from disk when it does not.
    """

    def __init__(self, graph, plane_paths, n, ncomp, stage, visibility,
                 halo_views, cache_bytes, release_planes):
        np = numpy_or_none()
        self.np = np
        self.graph = graph
        self.ncomp = ncomp
        self.stage = stage
        self.visibility = visibility
        self.halo_views = halo_views  # shard_id -> (ncomp, h) array
        self.cache_bytes = cache_bytes
        self.release_planes = release_planes
        self.planes = []
        for buf in (0, 1):
            row = []
            for comp in range(ncomp):
                if n == 0:
                    row.append(np.zeros(0, dtype=np.int64))
                else:
                    row.append(np.memmap(
                        plane_paths[buf][comp], dtype=np.int64, mode="r+",
                        shape=(n,),
                    ))
            self.planes.append(row)
        self._locals = {}
        self._locals_bytes = 0

    def local(self, shard_id):
        cached = self._locals.get(shard_id)
        if cached is not None:
            return cached, 0
        local = self.graph.local(shard_id)
        cost = 6 * local.lindices.nbytes + local.halo.nbytes
        if cost <= self.cache_bytes - self._locals_bytes:
            self._locals[shard_id] = local
            self._locals_bytes += cost
        return local, local.bytes_read


def _step_shard(ctx, shard_id, round_index, src, want_conflicts):
    """One shard, one synchronous round.  Returns the per-shard counters."""
    np = ctx.np
    local, io_read = ctx.local(shard_id)
    lo, hi, k = local.lo, local.hi, local.k
    halo = ctx.halo_views.get(shard_id)
    src_planes = ctx.planes[src]
    dst_planes = ctx.planes[1 - src]
    state = []
    for comp in range(ctx.ncomp):
        owned = np.array(src_planes[comp][lo:hi])
        if halo is not None and halo.shape[1]:
            state.append(np.concatenate([owned, halo[comp]]))
        else:
            state.append(owned)
    state = tuple(state)
    io_read += 8 * k * ctx.ncomp
    new_state = ctx.stage.step_batch(round_index, state, local.csr(), ctx.visibility)
    changed = 0
    if k:
        changed_mask = np.zeros(k, dtype=bool)
        for old, new in zip(state, new_state):
            changed_mask |= old[:k] != new[:k]
        changed = int(changed_mask.sum())
    owned_new = tuple(comp[:k] for comp in new_state)
    for comp in range(ctx.ncomp):
        dst_planes[comp][lo:hi] = owned_new[comp]
    io_written = 8 * k * ctx.ncomp
    final_mask = ctx.stage.batch_is_final(owned_new)
    finalized = int(final_mask.sum())
    all_final = bool(final_mask.all())
    conflicts = 0
    if want_conflicts and local.lindices.shape[0]:
        # Forward slots under *global* ids — each edge counted once, at its
        # smaller endpoint, exactly like the batch engine's edge arrays.
        fwd = local.global_indices() > local.owner_globals()
        if bool(fwd.any()):
            rows = local.csr().rows[: local.lindices.shape[0]][fwd]
            nbrs = local.lindices[fwd]
            equal = np.ones(rows.shape[0], dtype=bool)
            for comp in new_state:
                equal &= comp[nbrs] == comp[rows]
            conflicts = int(equal.sum())
    if ctx.release_planes:
        from repro.oocore.store import release_pages

        for comp in range(ctx.ncomp):
            release_pages(dst_planes[comp])
            release_pages(src_planes[comp])
        ctx.graph.release_resident()
    return {
        "changed": changed,
        "finalized": finalized,
        "all_final": all_final,
        "conflicts": conflicts,
        "io_read": io_read + local.bytes_read,
        "io_written": io_written,
    }


def _init_worker(graph_path, plane_paths, n, ncomp, stage, visibility,
                 segment_names, cache_bytes, release_planes, heartbeat=None):
    """Pool initializer: attach the shard files and the halo segments."""
    from repro.oocore.store import ShardedCSRGraph

    np = numpy_or_none()
    shared_memory = shared_memory_or_none()
    graph = ShardedCSRGraph.open(graph_path)
    halo_views = {}
    segments = []
    for shard_id, (name, h) in segment_names.items():
        segment = shared_memory.SharedMemory(name=name)
        segments.append(segment)  # keep the mapping alive for the pool's life
        halo_views[shard_id] = np.ndarray(
            (ncomp, h), dtype=np.int64, buffer=segment.buf
        )
    _WORKER_CTX["ctx"] = _ShardContext(
        graph, plane_paths, n, ncomp, stage, visibility, halo_views,
        cache_bytes, release_planes,
    )
    _WORKER_CTX["segments"] = segments
    _WORKER_CTX["heartbeat"] = heartbeat


def _round_task(shard_id, round_index, src, want_conflicts):
    board = _WORKER_CTX.get("heartbeat")
    if board is not None:
        from repro.obs import flight

        flight.beat(board)
    return _step_shard(
        _WORKER_CTX["ctx"], shard_id, round_index, src, want_conflicts
    )


class PartitionRunner:
    """Fan one stage's rounds out over the shards of a sharded graph.

    ``workers`` > 1 requests pool mode (fork + shared-memory halo planes);
    anything else — including platforms without fork or shm — runs the same
    shard loop inline in the parent with identical results.  The runner is
    per stage run: create, call :meth:`run_round` until done, :meth:`close`.
    """

    def __init__(self, graph, planes, stage, visibility, workers=None,
                 cache_bytes=0, release_planes=False, timeout=_DEFAULT_TIMEOUT):
        np = numpy_or_none()
        self.graph = graph
        self.planes = planes
        self.ncomp = planes.ncomp
        self.timeout = timeout
        self._pool = None
        self._manager = None
        self._halo_ids = {}
        self._halo_views = {}
        self._halo_slots = 0
        for shard_id in range(graph.shards):
            ids = graph.halo_ids(shard_id)
            if ids.shape[0]:
                self._halo_ids[shard_id] = ids
                self._halo_slots += int(ids.shape[0])
        workers = 1 if workers is None else int(workers)
        use_pool = (
            workers > 1
            and graph.shards > 1
            and shared_memory_or_none() is not None
            and self._fork_context() is not None
        )
        self._watchdog = None
        if use_pool:
            self._manager = SegmentManager()
            segment_names = {}
            for shard_id, ids in self._halo_ids.items():
                h = int(ids.shape[0])
                segment = self._manager.create(8 * self.ncomp * h)
                segment_names[shard_id] = (segment.name, h)
                self._halo_views[shard_id] = np.ndarray(
                    (self.ncomp, h), dtype=np.int64, buffer=segment.buf
                )
            heartbeat = None
            tel = obs.active()
            if tel.enabled and flight.watchdog_enabled():
                stall = min(
                    flight.stall_seconds(), max(float(self.timeout) * 0.5, 0.05)
                ) if self.timeout else flight.stall_seconds()
                self._watchdog = flight.WorkerWatchdog(
                    tel, flight.HeartbeatBoard(), stall_after=stall
                )
                heartbeat = self._watchdog.board.path
            context = self._fork_context()
            self._pool = context.Pool(
                processes=min(workers, graph.shards),
                initializer=_init_worker,
                initargs=(
                    graph.path, planes.paths, graph.n, self.ncomp, stage,
                    visibility, segment_names, cache_bytes, release_planes,
                    heartbeat,
                ),
            )
        else:
            for shard_id, ids in self._halo_ids.items():
                self._halo_views[shard_id] = np.zeros(
                    (self.ncomp, ids.shape[0]), dtype=np.int64
                )
            self._ctx = _ShardContext(
                graph, planes.paths, graph.n, self.ncomp, stage, visibility,
                self._halo_views, cache_bytes, release_planes,
            )

    @staticmethod
    def _fork_context():
        from repro.parallel.runner import _multiprocessing_context

        context = _multiprocessing_context()
        if context is None:
            return None
        if getattr(context, "get_start_method", lambda: "")() != "fork":
            return None
        return context

    @property
    def pool_mode(self):
        """Whether shards step in forked workers (False: inline loop)."""
        return self._pool is not None

    def fill_halos(self, src):
        """Gather every shard's boundary colors from the source plane.

        This *is* the halo exchange: the only cross-shard bytes of a round.
        Returns the gathered byte count.
        """
        src_planes = self.planes.buffer(src)
        halo_bytes = 0
        for shard_id, ids in self._halo_ids.items():
            view = self._halo_views[shard_id]
            for comp in range(self.ncomp):
                view[comp] = src_planes[comp][ids]
            halo_bytes += 8 * self.ncomp * int(ids.shape[0])
        return halo_bytes

    def _wait_round(self, async_result):
        """Block for the round barrier, polling the watchdog while waiting.

        Same contract as ``async_result.get(self.timeout)`` — raises
        ``multiprocessing.TimeoutError`` when the round budget expires — but
        sliced into watchdog polls so a shard worker that stops heartbeating
        surfaces as ``worker.stalled`` well before the round timeout.
        """
        watchdog = self._watchdog
        if watchdog is None:
            return async_result.get(self.timeout)
        import multiprocessing

        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        while True:
            step = watchdog.poll_interval
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise multiprocessing.TimeoutError
                step = min(step, remaining)
            try:
                return async_result.get(step)
            except multiprocessing.TimeoutError:
                watchdog.poll()

    def run_round(self, round_index, src, want_conflicts=False):
        """One synchronous round over every shard; returns aggregated counters."""
        halo_bytes = self.fill_halos(src)
        tasks = [
            (shard_id, round_index, src, want_conflicts)
            for shard_id in range(self.graph.shards)
        ]
        if self._pool is not None:
            async_result = self._pool.starmap_async(_round_task, tasks)
            try:
                results = self._wait_round(async_result)
            except Exception:
                # A dead or wedged worker mid-round: terminate the pool now
                # so close() can release the halo segments deterministically.
                self._pool.terminate()
                self._pool.join()
                self._pool = None
                if self._watchdog is not None:
                    self._watchdog.notice_restart()
                raise
        else:
            results = [_step_shard(self._ctx, *task) for task in tasks]
        agg = {
            "changed": 0, "finalized": 0, "conflicts": 0,
            "io_read": 0, "io_written": 0,
            "all_final": True, "halo_bytes": halo_bytes,
        }
        for row in results:
            agg["changed"] += row["changed"]
            agg["finalized"] += row["finalized"]
            agg["conflicts"] += row["conflicts"]
            agg["io_read"] += row["io_read"]
            agg["io_written"] += row["io_written"]
            agg["all_final"] = agg["all_final"] and row["all_final"]
        return agg

    def close(self):
        """Tear down the pool and release every halo segment."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._manager is not None:
            self._manager.close()
            self._manager = None
        if self._watchdog is not None:
            self._watchdog.board.close()
            self._watchdog = None
        self._halo_views = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
