"""Multi-process sharded job execution.

The experiment layer of the reproduction: describe runs as picklable
:class:`JobSpec` values (graph family, algorithm, backend, seed), then
execute them — one at a time through :func:`run`, or sharded across a
process pool through :func:`run_many` / :func:`run_sweep` — with chunked
dispatch, per-job timeouts, bounded retry, and worker telemetry stitched
back into the parent :mod:`repro.obs` stream.  The facade is re-exported at
the package root::

    import repro

    outcome = repro.run({"algorithm": "cor36", "graph": {"family": "regular", "n": 500, "degree": 8}})
    outcomes = repro.run_many([...], workers=4)

Execution is deterministic in the spec: sequential and parallel runs of the
same specs produce bit-identical outcomes, so sharding is purely a
wall-clock decision.
"""

from repro.parallel.jobs import (
    JobOutcome,
    JobSpec,
    SelfStabReport,
    algorithm_names,
    build_graph,
    clear_graph_cache,
    execute_job,
    graph_cache_stats,
    register_algorithm,
    resolve_algorithm,
)
from repro.parallel.partition import PartitionRunner
from repro.parallel.runner import JobRunner, run, run_many, run_sweep, sweep_specs
from repro.parallel.shm import shm_available

__all__ = [
    "JobOutcome",
    "JobSpec",
    "JobRunner",
    "PartitionRunner",
    "SelfStabReport",
    "algorithm_names",
    "build_graph",
    "clear_graph_cache",
    "execute_job",
    "graph_cache_stats",
    "register_algorithm",
    "resolve_algorithm",
    "run",
    "run_many",
    "run_sweep",
    "shm_available",
    "sweep_specs",
]
