"""Zero-copy shared-memory fan-out for the multi-process job runner.

The PR-5 pool ships every job *by value*: each worker regenerates its graph
from the :class:`~repro.parallel.jobs.JobSpec` and pickles the full color
list back through the result queue.  This module moves the two largest
payloads into ``multiprocessing.shared_memory`` segments instead:

* **graph segments** — the parent writes a graph's CSR adjacency
  (``indptr`` followed by ``indices``, both ``int64``) into one segment and
  ships only the segment *name* plus shape metadata; workers attach and wrap
  the buffers in a :class:`SharedGraphView`, a read-only
  :class:`~repro.runtime.graph.StaticGraph` drop-in, so the per-worker
  rebuild disappears entirely;
* **color segments** — one small per-job segment the worker writes the
  final color array into, replacing the list in the envelope with a tiny
  marker the parent resolves back from the segment (``offload_colors`` /
  ``restore_colors``).

Lifecycle is strictly **parent-creates, worker-attaches**: every segment is
owned by a :class:`SegmentManager` in the parent, released when the last job
referencing it finalizes (:class:`ShmPlane` refcounts graph segments across
jobs), with ``JobRunner.close``/``__exit__`` and an ``atexit`` hook as
backstops.  Segments deliberately survive the timeout machinery's pool
terminate-and-rebuild: the re-dispatched payloads attach to the same names.
Workers never unlink — a killed or crashed worker can therefore never leak a
``/dev/shm`` entry; the mapping dies with its process.

Every path degrades to the by-value protocol with bit-identical results:
no ``shared_memory`` module, no NumPy, ``REPRO_DISABLE_SHM=1``, a failed
attach inside a worker, or a color list the segment cannot represent all
simply leave the plain-dict envelope untouched.
"""

import atexit
import os
import secrets
import weakref

from repro.obs import core as obs
from repro.runtime.csr import CSRAdjacency, numpy_or_none

__all__ = [
    "SEGMENT_PREFIX",
    "SegmentManager",
    "SharedGraphView",
    "ShmPlane",
    "attach_graph",
    "export_graph",
    "offload_colors",
    "restore_colors",
    "segment_stats",
    "shared_memory_or_none",
    "shm_available",
]

#: Every segment name starts with this; tests scan ``/dev/shm`` for leaks.
SEGMENT_PREFIX = "repro-shm-"

#: Marker key the worker leaves in ``payload["colors"]`` after offloading.
COLORS_KEY = "__shm_colors__"

_DISABLE_ENV = "REPRO_DISABLE_SHM"
_BUDGET_ENV = "REPRO_SHM_BUDGET"

#: Cap on live segment bytes per ``map_jobs`` call; graphs beyond it run by
#: value.  2 GiB covers four distinct n=10^6, degree-16 topologies.
_DEFAULT_BUDGET = 2 << 30


def shared_memory_or_none():
    """The ``multiprocessing.shared_memory`` module, or None when unusable.

    ``REPRO_DISABLE_SHM=1`` forces None — the differential escape hatch that
    proves the by-value path is bit-identical (mirrors ``REPRO_DISABLE_NUMPY``).
    """
    if os.environ.get(_DISABLE_ENV) == "1":
        return None
    try:
        from multiprocessing import shared_memory
    except (ImportError, OSError):
        return None
    return shared_memory


def shm_available():
    """True iff the shared-memory fan-out plane can be used at all."""
    return shared_memory_or_none() is not None and numpy_or_none() is not None


def shm_budget():
    """Byte budget for segments created per ``map_jobs`` call."""
    try:
        return int(os.environ.get(_BUDGET_ENV, _DEFAULT_BUDGET))
    except ValueError:
        return _DEFAULT_BUDGET


# -- segment ownership ----------------------------------------------------------------

_LIVE_MANAGERS = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def segment_stats():
    """Count and total bytes of every live manager's owned segments.

    A cheap process-wide occupancy reading over ``_LIVE_MANAGERS``; the
    sampling profiler (:mod:`repro.obs.flight`) records it per sample so a
    timeline shows when the shared-memory plane fills and drains.
    """
    segments = 0
    total = 0
    for manager in list(_LIVE_MANAGERS):
        for segment in list(manager._segments.values()):
            segments += 1
            total += int(getattr(segment, "size", 0) or 0)
    return {"segments": segments, "bytes": total}


def _cleanup_managers():
    # Each manager individually: one close() blowing up (a view pinned by a
    # worker that died mid-round, an interpreter half torn down) must not
    # stop the remaining managers — e.g. the partition runner's halo
    # segments — from being unlinked.
    for manager in list(_LIVE_MANAGERS):
        try:
            manager.close()
        except Exception:
            pass


class SegmentManager:
    """Parent-side owner of every shared-memory segment.

    Creation and unlinking happen only here; workers attach by name and
    merely close their mapping.  The manager is fork-safe: a forked child
    inheriting it (the pool workers inherit the parent's modules) must never
    unlink the parent's segments, so ``close`` is a no-op outside the
    creating process.  An ``atexit`` hook closes any manager still live at
    interpreter shutdown — the last line of defense against ``/dev/shm``
    leaks when a runner is abandoned without ``close()``.
    """

    def __init__(self):
        self._pid = os.getpid()
        self._segments = {}
        global _ATEXIT_REGISTERED
        if not _ATEXIT_REGISTERED:
            atexit.register(_cleanup_managers)
            _ATEXIT_REGISTERED = True
        _LIVE_MANAGERS.add(self)

    def __len__(self):
        return len(self._segments)

    def names(self):
        """Names of the segments currently owned (sorted, for tests)."""
        return sorted(self._segments)

    def create(self, nbytes):
        """Create and own a new segment of at least ``nbytes`` bytes."""
        shared_memory = shared_memory_or_none()
        if shared_memory is None:
            raise RuntimeError("shared memory is unavailable")
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        segment = shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)), name=name)
        self._segments[name] = segment
        return segment

    def get(self, name):
        """The owned segment called ``name``, or None."""
        return self._segments.get(name)

    def release(self, name):
        """Close and unlink one owned segment (idempotent)."""
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            # A numpy view is still alive somewhere; unlink regardless — the
            # name disappears now, the memory when the last mapping drops.
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def close(self):
        """Release every owned segment (close-only in forked children).

        A forked child inheriting the manager (pool workers, including the
        partition runner's halo workers) must never unlink the parent's
        segments — but it must still close its inherited mappings, or a
        worker dying between rounds pins the segment memory until every
        other mapping drops.
        """
        if os.getpid() != self._pid:
            for segment in self._segments.values():
                try:
                    segment.close()
                except (BufferError, OSError):
                    pass
            self._segments.clear()
            return
        for name in list(self._segments):
            self.release(name)


# -- the graph plane ------------------------------------------------------------------


def export_graph(manager, graph):
    """Write ``graph``'s CSR arrays into a new segment; return attach metadata.

    Layout: ``indptr`` (``n + 1`` int64) at offset 0, ``indices`` (``2m``
    int64) immediately after.  Returns None when the graph cannot be
    exported (no NumPy — ``csr()`` raises — or segment creation failed).
    """
    np = numpy_or_none()
    if np is None:
        return None
    try:
        csr = graph.csr()
        segment = manager.create(csr.indptr.nbytes + csr.indices.nbytes)
    except (RuntimeError, OSError, ValueError):
        return None
    indptr_view = np.ndarray(csr.indptr.shape, dtype=np.int64, buffer=segment.buf)
    indptr_view[:] = csr.indptr
    indices_view = np.ndarray(
        csr.indices.shape, dtype=np.int64, buffer=segment.buf, offset=csr.indptr.nbytes
    )
    indices_view[:] = csr.indices
    del indptr_view, indices_view
    return {
        "segment": segment.name,
        "n": int(graph.n),
        "m": int(graph.m),
        "max_degree": int(graph.max_degree),
        "nbytes": csr.indptr.nbytes + csr.indices.nbytes,
    }


def attach_graph(meta):
    """Worker-side: attach to an exported graph segment as a :class:`SharedGraphView`."""
    shared_memory = shared_memory_or_none()
    np = numpy_or_none()
    if shared_memory is None or np is None:
        raise RuntimeError("shared memory is unavailable")
    segment = shared_memory.SharedMemory(name=meta["segment"])
    n, m = int(meta["n"]), int(meta["m"])
    indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=segment.buf)
    indices = np.ndarray(
        (2 * m,), dtype=np.int64, buffer=segment.buf, offset=(n + 1) * 8
    )
    return SharedGraphView(
        n, m, indptr, indices, int(meta["max_degree"]), segment=segment
    )


class SharedGraphView:
    """Read-only :class:`~repro.runtime.graph.StaticGraph` drop-in over shared CSR.

    Mirrors the full query surface algorithms and recipes use — ``n``,
    ``ids``, ``vertices``, ``neighbors``, ``degree``, ``edges``, ``m``,
    ``max_degree``, ``csr``, ``has_edge``, ``bfs_distances``, ``subgraph`` —
    so a worker can run any job against the attached buffers with zero
    rebuild.  ``ids`` is ``range(n)``, identical to every generated graph's
    default, which keeps id-keyed initial colorings bit-identical.
    """

    __slots__ = ("n", "ids", "_m", "_max_degree", "_indptr", "_indices", "_segment", "_csr", "_edges")

    def __init__(self, n, m, indptr, indices, max_degree, segment=None):
        self.n = n
        self.ids = range(n)
        self._m = m
        self._max_degree = max_degree
        self._indptr = indptr
        self._indices = indices
        self._segment = segment
        self._csr = None
        self._edges = None

    # -- queries (StaticGraph parity) -------------------------------------------

    def vertices(self):
        """Return the vertex range ``0..n-1``."""
        return range(self.n)

    def neighbors(self, v):
        """Return the sorted tuple of neighbors of ``v``."""
        lo, hi = int(self._indptr[v]), int(self._indptr[v + 1])
        return tuple(self._indices[lo:hi].tolist())

    def degree(self, v):
        """Return the degree of ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    @property
    def edges(self):
        """Return the sorted tuple of edges as ``(u, v)`` with ``u < v``."""
        if self._edges is None:
            csr = self.csr()
            self._edges = tuple(zip(csr.edge_u.tolist(), csr.edge_v.tolist()))
        return self._edges

    @property
    def m(self):
        """Return the number of edges."""
        return self._m

    @property
    def max_degree(self):
        """Return the maximum degree ``Delta`` (0 for the empty graph)."""
        return self._max_degree

    def csr(self):
        """Return the :class:`~repro.runtime.csr.CSRAdjacency` over the shared buffers.

        Zero-copy: ``indptr``/``indices`` *are* the segment memory; only the
        derived columns (rows, degrees, edge endpoints) are materialized, and
        the result is cached for the view's lifetime.
        """
        if self._csr is None:
            self._csr = CSRAdjacency.from_arrays(self.n, self._indptr, self._indices)
        return self._csr

    def has_edge(self, u, v):
        """Return True iff ``(u, v)`` is an edge (binary search in the row)."""
        lo, hi = int(self._indptr[u]), int(self._indptr[u + 1])
        np = numpy_or_none()
        pos = lo + int(np.searchsorted(self._indices[lo:hi], v))
        return pos < hi and int(self._indices[pos]) == v

    def bfs_distances(self, sources):
        """BFS distances from the closest source (StaticGraph semantics)."""
        from collections import deque

        indptr, indices = self._indptr, self._indices
        distances = {}
        queue = deque()
        for source in sources:
            if source not in distances:
                distances[source] = 0
                queue.append(source)
        while queue:
            u = queue.popleft()
            for w in indices[int(indptr[u]):int(indptr[u + 1])].tolist():
                if w not in distances:
                    distances[w] = distances[u] + 1
                    queue.append(w)
        return distances

    def subgraph(self, vertex_subset):
        """Return the induced :class:`StaticGraph` on ``vertex_subset`` (relabeled)."""
        from repro.runtime.graph import StaticGraph

        ordered = sorted(set(vertex_subset))
        index = {v: i for i, v in enumerate(ordered)}
        edges = [
            (index[u], index[v])
            for u, v in self.edges
            if u in index and v in index
        ]
        ids = [self.ids[v] for v in ordered]
        return StaticGraph(len(ordered), edges, ids=ids), index

    def detach(self):
        """Drop the array views and close this process's mapping."""
        self._csr = None
        self._indptr = None
        self._indices = None
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:
                pass
            self._segment = None

    def __repr__(self):
        return "SharedGraphView(n=%d, m=%d, max_degree=%d)" % (
            self.n,
            self._m,
            self._max_degree,
        )


# -- the color plane ------------------------------------------------------------------


def offload_colors(envelope, meta):
    """Worker-side: move the envelope's color list into its shared segment.

    Replaces ``summary.payload.colors`` with the ``{COLORS_KEY: count}``
    marker when — and only when — the list round-trips exactly through an
    ``int64`` array; anything else (floats, overlong lists, overflowing
    ints, non-list payloads) stays by value.
    """
    if not envelope.get("ok"):
        return
    summary = envelope.get("summary") or {}
    payload = summary.get("payload") or {}
    colors = payload.get("colors")
    if not isinstance(colors, list) or len(colors) > meta["capacity"]:
        return
    shared_memory = shared_memory_or_none()
    np = numpy_or_none()
    if shared_memory is None or np is None:
        return
    try:
        array = np.asarray(colors)
    except (TypeError, ValueError, OverflowError):
        return
    if array.dtype.kind != "i" or array.ndim != 1:
        return
    segment = shared_memory.SharedMemory(name=meta["segment"])
    try:
        view = np.ndarray((meta["capacity"],), dtype=np.int64, buffer=segment.buf)
        view[: array.size] = array
        del view
    finally:
        try:
            segment.close()
        except BufferError:
            pass
    payload["colors"] = {COLORS_KEY: int(array.size)}


def restore_colors(envelope, meta, manager):
    """Parent-side: resolve a worker's color marker back into a plain list."""
    summary = envelope.get("summary") or {}
    payload = summary.get("payload") or {}
    colors = payload.get("colors")
    if not (isinstance(colors, dict) and COLORS_KEY in colors):
        return
    segment = manager.get(meta["segment"])
    np = numpy_or_none()
    count = int(colors[COLORS_KEY])
    view = np.ndarray((meta["capacity"],), dtype=np.int64, buffer=segment.buf)
    payload["colors"] = view[:count].tolist()
    del view


# -- per-map_jobs orchestration -------------------------------------------------------


class ShmPlane:
    """Per-``map_jobs`` segment bookkeeping: annotate payloads, refcount, release.

    Graph segments are shared across every job with the same topology key
    and exported only when the topology is *reused* (two or more jobs) or
    already materialized in the parent's graph cache — otherwise by-value
    dispatch lets the workers generate in parallel, which is never slower.
    Color segments are per-job and always created (they are tiny and remove
    the result-queue pickle of the largest field).
    """

    def __init__(self, manager, budget=None):
        self.manager = manager
        self.budget = shm_budget() if budget is None else budget
        self._spent = 0
        self._graph_refs = {}  # segment name -> outstanding job count
        self._graph_by_index = {}  # job index -> graph segment name
        self._colors_by_index = {}  # job index -> colors meta

    def annotate(self, specs, payloads):
        """Attach shm metadata to every payload this plane can serve."""
        from repro.parallel.jobs import build_graph, graph_key, peek_graph

        by_key = {}
        for index, spec in enumerate(specs):
            try:
                key = graph_key(spec.graph)
            except TypeError:
                key = ("unhashable", index)
            by_key.setdefault(key, []).append(index)
        graph_meta = {}
        for key, indices in by_key.items():
            cached = peek_graph(dict(key)) if isinstance(key[0], tuple) else None
            if len(indices) < 2 and cached is None:
                continue
            graph = cached if cached is not None else build_graph(dict(key))
            estimated = 8 * (graph.n + 1 + 2 * graph.m)
            if self._spent + estimated > self.budget:
                continue
            meta = export_graph(self.manager, graph)
            if meta is None:
                continue
            self._spent += meta["nbytes"]
            self._graph_refs[meta["segment"]] = len(indices)
            graph_meta[key] = meta
            for index in indices:
                self._graph_by_index[index] = meta["segment"]
                payloads[index]["shm_graph"] = meta
        for index, spec in enumerate(specs):
            n = int(spec.graph.get("n", 64))
            if spec.graph.get("family") == "grid":
                n = int(spec.graph.get("rows", 8)) * int(spec.graph.get("cols", 8))
            nbytes = max(1, n) * 8
            if self._spent + nbytes > self.budget:
                continue
            try:
                segment = self.manager.create(nbytes)
            except (RuntimeError, OSError, ValueError):
                continue
            self._spent += nbytes
            meta = {"segment": segment.name, "capacity": n}
            self._colors_by_index[index] = meta
            payloads[index]["shm_colors"] = meta
        tel = obs.active()
        if tel.enabled:
            if self._graph_refs:
                tel.counter("parallel.shm.graph_segments", value=len(self._graph_refs))
            if self._colors_by_index:
                tel.counter("parallel.shm.color_segments", value=len(self._colors_by_index))
            tel.gauge("parallel.shm.bytes", self._spent)

    def finalize(self, index, envelope):
        """A job reached its final envelope: restore colors, drop references."""
        colors_meta = self._colors_by_index.pop(index, None)
        if colors_meta is not None:
            if envelope.get("ok"):
                restore_colors(envelope, colors_meta, self.manager)
            self.manager.release(colors_meta["segment"])
        name = self._graph_by_index.pop(index, None)
        if name is not None:
            self._graph_refs[name] -= 1
            if self._graph_refs[name] <= 0:
                del self._graph_refs[name]
                self.manager.release(name)

    def close(self):
        """Release everything still outstanding (exception backstop)."""
        for meta in self._colors_by_index.values():
            self.manager.release(meta["segment"])
        self._colors_by_index.clear()
        for name in self._graph_refs:
            self.manager.release(name)
        self._graph_refs.clear()
        self._graph_by_index.clear()
