"""Job descriptions and the worker-side executor.

The multi-process runner never pickles graphs, engines, or result objects —
everything that crosses a process boundary is a plain dict:

* a :class:`JobSpec` describes one run *by value*: a graph family + its
  generator parameters, an algorithm name from the :func:`register_algorithm`
  registry, a backend name for the :mod:`repro.runtime.backends` registry,
  and a seed.  ``to_dict`` / ``from_dict`` round-trip it losslessly.
* :func:`execute_job` runs one spec in the current process and returns an
  *envelope* dict: the spec, ``ok``, a :func:`repro.runtime.results.summarize`
  summary of the result (every algorithm returns an object satisfying the
  shared result protocol), the wall time, an error record on failure, and —
  when requested — the run's telemetry records in the JSONL export format,
  ready for :meth:`repro.obs.core.Telemetry.absorb` in the parent.

Because a spec is pure data and every builtin algorithm is deterministic in
``(graph spec, algorithm, backend, seed)``, executing the same spec inline,
in one worker, or across eight workers yields bit-identical envelopes — the
property the parity tests in ``tests/test_parallel.py`` pin down.
"""

import os
import time
import traceback
from collections import OrderedDict

from repro.obs import core as obs
from repro.runtime.results import (
    SCHEMA_VERSION,
    Result,
    check_schema_version,
    summarize,
)

__all__ = [
    "JobSpec",
    "JobOutcome",
    "SelfStabReport",
    "algorithm_names",
    "build_graph",
    "clear_graph_cache",
    "execute_job",
    "execute_payload",
    "execute_chunk",
    "graph_cache_stats",
    "graph_key",
    "peek_graph",
    "register_algorithm",
    "resolve_algorithm",
]


# -- graph materialization -----------------------------------------------------------


def _materialize_graph(spec):
    from repro import graphgen
    from repro.runtime.graph import StaticGraph

    family = spec.get("family", "regular")
    n = spec.get("n", 64)
    seed = spec.get("seed", 1)
    if family == "regular":
        return graphgen.random_regular(n, spec.get("degree", 6), seed=seed)
    if family == "gnp":
        return graphgen.gnp_graph(n, spec.get("prob", 0.1), seed=seed)
    if family == "cycle":
        return graphgen.cycle_graph(n)
    if family == "path":
        return graphgen.path_graph(n)
    if family == "grid":
        return graphgen.grid_graph(spec.get("rows", 8), spec.get("cols", 8))
    if family == "tree":
        return graphgen.random_tree(n, seed=seed)
    if family == "unit-disk":
        return graphgen.unit_disk_graph(n, spec.get("radius", 0.15), seed=seed)
    if family == "edges":
        return StaticGraph(n, [tuple(edge) for edge in spec.get("edges", [])])
    raise ValueError("unknown graph family %r" % family)


# Bounded LRU over materialized graphs.  Generation dominates per-job setup
# (21s for a random 16-regular graph at n=10^5), and sweeps over seeds or
# backends keep asking for the same topology; caching the StaticGraph also
# caches its memoized ``csr()`` — the cross-job CSR cache the shared-memory
# exporter reads from.  Keys are the *full* spec dict, so a differing seed,
# degree, or probability is a different entry by construction.
_GRAPH_CACHE = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}

_CACHE_SIZE_ENV = "REPRO_GRAPH_CACHE_SIZE"
_CACHE_BYTES_ENV = "REPRO_GRAPH_CACHE_BYTES"
_DEFAULT_CACHE_SIZE = 8
_DEFAULT_CACHE_BYTES = 512 << 20


def _cache_limits():
    try:
        entries = int(os.environ.get(_CACHE_SIZE_ENV, _DEFAULT_CACHE_SIZE))
    except ValueError:
        entries = _DEFAULT_CACHE_SIZE
    try:
        max_bytes = int(os.environ.get(_CACHE_BYTES_ENV, _DEFAULT_CACHE_BYTES))
    except ValueError:
        max_bytes = _DEFAULT_CACHE_BYTES
    return entries, max_bytes


def graph_key(spec):
    """Hashable cache identity of a graph spec dict.

    Conservative on purpose: two spec dicts that differ only in a key being
    *absent* versus *present at its default* get distinct keys (at worst a
    duplicate entry, never a wrong graph).  Raises :class:`TypeError` for
    unhashable parameter values; callers then bypass the cache.
    """
    items = []
    for key in sorted(spec):
        value = spec[key]
        if key == "edges":
            value = tuple(tuple(edge) for edge in value)
        items.append((key, value))
    key = tuple(items)
    hash(key)  # surface unhashable parameter values here, not at cache lookup
    return key


def _graph_nbytes(graph):
    """Rough resident size of a cached graph (python adjacency + CSR view).

    Measured at ~80 bytes per adjacency slot for the tuple-of-tuples
    representation; padded to cover the edge tuple and the CSR arrays.
    """
    return 112 * (graph.n + 2 * graph.m)


def _cache_bytes():
    return sum(_graph_nbytes(graph) for graph in _GRAPH_CACHE.values())


def graph_cache_stats():
    """Hit/miss/eviction counts and current occupancy of the graph cache."""
    return {
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
        "evictions": _CACHE_STATS["evictions"],
        "entries": len(_GRAPH_CACHE),
        "bytes": _cache_bytes(),
    }


def clear_graph_cache():
    """Empty the graph cache and reset its statistics."""
    _GRAPH_CACHE.clear()
    _CACHE_STATS.update(hits=0, misses=0, evictions=0)


def peek_graph(spec):
    """The cached graph for ``spec``, or None — no build, no stats, no LRU touch."""
    try:
        return _GRAPH_CACHE.get(graph_key(spec))
    except TypeError:
        return None


def build_graph(spec, cache=True):
    """Materialize a :class:`~repro.runtime.graph.StaticGraph` from a dict.

    ``spec`` names a :mod:`repro.graphgen` family plus its parameters, e.g.
    ``{"family": "regular", "n": 1000, "degree": 8, "seed": 3}``.  The
    ``edges`` family carries an explicit edge list instead of a generator:
    ``{"family": "edges", "n": 4, "edges": [(0, 1), (2, 3)]}``.

    Results come from a bounded LRU keyed by the full spec (safe: generation
    is deterministic in the spec, and graphs are immutable).  Bounds:
    ``REPRO_GRAPH_CACHE_SIZE`` entries (default 8, 0 disables) and
    ``REPRO_GRAPH_CACHE_BYTES`` estimated bytes (default 512 MiB).  Pass
    ``cache=False`` to force a fresh build.
    """
    max_entries, max_bytes = _cache_limits()
    if not cache or max_entries <= 0:
        return _materialize_graph(spec)
    try:
        key = graph_key(spec)
    except TypeError:
        return _materialize_graph(spec)
    tel = obs.active()
    graph = _GRAPH_CACHE.get(key)
    if graph is not None:
        _GRAPH_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        if tel.enabled:
            tel.counter("parallel.graph_cache.hits")
        return graph
    graph = _materialize_graph(spec)
    _CACHE_STATS["misses"] += 1
    if tel.enabled:
        tel.counter("parallel.graph_cache.misses")
    if _graph_nbytes(graph) <= max_bytes:
        _GRAPH_CACHE[key] = graph
        while len(_GRAPH_CACHE) > max_entries or _cache_bytes() > max_bytes:
            _GRAPH_CACHE.popitem(last=False)
            _CACHE_STATS["evictions"] += 1
            if tel.enabled:
                tel.counter("parallel.graph_cache.evictions")
    if tel.enabled:
        tel.gauge("parallel.graph_cache.entries", len(_GRAPH_CACHE))
        tel.gauge("parallel.graph_cache.bytes", _cache_bytes())
    return graph


# -- the algorithm registry ----------------------------------------------------------

_ALGORITHMS = {}


def register_algorithm(name, fn):
    """Register ``fn(graph, backend=..., seed=..., **params)`` under ``name``.

    The callable must return an object satisfying the shared result protocol
    (``colors``, ``rounds``, ``to_dict()``) — the runner serializes it with
    :func:`repro.runtime.results.summarize`.  Registration is per-process:
    workers started with the ``fork`` method inherit the parent's registry;
    under ``spawn`` only the builtins are visible.
    """
    _ALGORITHMS[name] = fn
    return fn


def algorithm_names():
    """Sorted names of every registered job algorithm."""
    return sorted(_ALGORITHMS)


def resolve_algorithm(name):
    """The registered callable for ``name`` (ValueError if unknown)."""
    try:
        return _ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            "unknown algorithm %r (registered: %s)"
            % (name, ", ".join(algorithm_names()))
        )


def _alg_cor36(graph, backend="auto", seed=1, **params):
    """Corollary 3.6: Linial -> AG -> standard reduction."""
    from repro.recipes import delta_plus_one_coloring

    return delta_plus_one_coloring(graph, backend=backend, **params)


def _alg_exact(graph, backend="auto", seed=1, **params):
    """Section 7: exact (Delta+1) via the AG(p)/AG(N) hybrid."""
    from repro.recipes import delta_plus_one_exact_no_reduction

    return delta_plus_one_exact_no_reduction(graph, backend=backend, **params)


def _alg_one_plus_eps(graph, backend="auto", seed=1, **params):
    """Theorem 6.4 shape: the arbdefective O(Delta)-coloring route."""
    from repro.recipes import one_plus_eps_delta_coloring

    return one_plus_eps_delta_coloring(graph, backend=backend, **params)


def _alg_sublinear(graph, backend="auto", seed=1, **params):
    """Theorem 6.4 shape, exact variant (standard reduction tail)."""
    from repro.recipes import sublinear_delta_plus_one_coloring

    return sublinear_delta_plus_one_coloring(graph, backend=backend, **params)


def _alg_bek(graph, backend="auto", seed=1, **params):
    """Barenboim–Elkin–Kuhn recursive (Delta+1)-coloring."""
    from repro.baselines.bek import bek_delta_plus_one

    return bek_delta_plus_one(graph, backend=backend, **params)


def _alg_kuhn_wattenhofer(graph, backend="auto", seed=1, **params):
    """Kuhn–Wattenhofer halving reduction from the trivial ID coloring."""
    from repro.baselines.kuhn_wattenhofer import KuhnWattenhoferReduction
    from repro.runtime.backends import resolve_backend

    engine = resolve_backend("engine", backend)(graph)
    return engine.run(
        KuhnWattenhoferReduction(),
        list(range(graph.n)),
        in_palette_size=max(2, graph.n),
        **params,
    )


def _alg_defective(graph, backend="auto", seed=1, tolerance=None, k=None,
                   **params):
    """Lemma 3.4's tolerant Linial stage alone: an m-defective coloring.

    ``k`` (alias ``tolerance``) is the defect budget — the same Maus-style
    dial the sublinear recipes expose.
    """
    from repro.defective.vertex import DefectiveLinialColoring
    from repro.recipes import _resolve_k_knob
    from repro.runtime.backends import resolve_backend

    tolerance = _resolve_k_knob(tolerance, k, graph.max_degree)
    if tolerance is None:
        tolerance = max(1, int(round(graph.max_degree ** 0.5)))
    engine = resolve_backend("engine", backend)(graph)
    return engine.run(
        DefectiveLinialColoring(tolerance),
        list(range(graph.n)),
        in_palette_size=max(2, graph.n),
        **params,
    )


def _alg_edge(graph, backend="auto", seed=1, **params):
    """Section 5's (2*Delta-1)-edge-coloring pipeline (CONGEST ledger)."""
    from repro.edge.congest import edge_coloring_congest

    return edge_coloring_congest(graph, backend=backend, **params)


def _alg_bitround(graph, backend="auto", seed=1, **params):
    """Corollary 3.6 over bit channels (vertex coloring, bit-round ledger)."""
    from repro.bitround.vertex_coloring import run_vertex_coloring_bit_protocol

    return run_vertex_coloring_bit_protocol(graph, backend=backend, **params)


def _alg_bitround_edge(graph, backend="auto", seed=1, **params):
    """Theorem 5.3 over bit channels (edge coloring, bit-round ledger)."""
    from repro.bitround.edge_coloring import run_edge_coloring_bit_protocol

    return run_edge_coloring_bit_protocol(graph, backend=backend, **params)


class BaselineReport:
    """Result-protocol wrapper for baselines that return bare colors.

    ``rounds`` carries whatever step notion the baseline has — sequential
    vertex visits for the greedy oracle, communication rounds for the
    randomized trial coloring.
    """

    def __init__(self, colors, rounds):
        self.colors = list(colors)
        self.rounds = rounds

    @property
    def num_colors(self):
        """Distinct colors used."""
        return len(set(self.colors))

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "colors": list(self.colors),
            "num_colors": self.num_colors,
            "rounds": self.rounds,
        }

    def __repr__(self):
        return "BaselineReport(rounds=%d, colors=%d)" % (
            self.rounds,
            self.num_colors,
        )


Result.register(BaselineReport)


def _alg_greedy(graph, backend="auto", seed=1, order=None, **params):
    """Sequential first-fit oracle (wave-parallel / native on the fast path).

    Not distributed: ``rounds`` is the number of sequential vertex visits.
    """
    from repro.baselines.greedy import greedy_coloring

    return BaselineReport(greedy_coloring(graph, order=order, backend=backend),
                          graph.n)


def _alg_random_trial(graph, backend="auto", seed=1, palette=None, **params):
    """Randomized trial (Delta+1)-coloring (seeded, backend-invariant)."""
    from repro.baselines.randomized import random_trial_coloring

    colors, rounds = random_trial_coloring(
        graph, seed, palette=palette, backend=backend, **params
    )
    return BaselineReport(colors, rounds)


def _alg_selfstab_rank(
    graph, backend="auto", seed=1, bursts=2, corruptions=8, churn=0, **params
):
    """Rank-greedy self-stabilizing (Delta+1)-coloring under faults."""
    from repro.baselines.selfstab_rank import RankGreedySelfStabColoring

    return _run_selfstab(
        RankGreedySelfStabColoring, graph, backend, seed, bursts, corruptions,
        churn
    )


class SelfStabReport:
    """Result-protocol wrapper for a self-stabilization job.

    Cold-start stabilization plus ``bursts`` seeded corruption bursts; the
    final colors come from the algorithm's legal quiescent state.
    """

    def __init__(self, colors, cold_rounds, burst_rounds, legal):
        self.colors = colors
        self.cold_rounds = cold_rounds
        self.burst_rounds = list(burst_rounds)
        self.legal = legal

    @property
    def rounds(self):
        """Total rounds across cold start and every burst recovery."""
        return self.cold_rounds + sum(self.burst_rounds)

    @property
    def num_colors(self):
        """Distinct colors in the quiescent state."""
        return len(set(self.colors))

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "colors": list(self.colors),
            "num_colors": self.num_colors,
            "cold_rounds": self.cold_rounds,
            "burst_rounds": list(self.burst_rounds),
            "rounds": self.rounds,
            "legal": self.legal,
        }

    def __repr__(self):
        return "SelfStabReport(rounds=%d, colors=%d, legal=%s)" % (
            self.rounds,
            self.num_colors,
            self.legal,
        )


Result.register(SelfStabReport)


def _run_selfstab(algorithm_cls, graph, backend, seed, bursts, corruptions, churn):
    from repro.runtime.backends import resolve_backend
    from repro.runtime.graph import DynamicGraph
    from repro.selfstab import FaultCampaign

    dynamic = DynamicGraph.from_static(graph)
    algorithm = algorithm_cls(dynamic.n_bound, dynamic.delta_bound)
    engine = resolve_backend("selfstab", backend)(dynamic, algorithm)
    cold_rounds = engine.run_to_quiescence()
    burst_rounds = []
    campaign = FaultCampaign(seed)
    for _ in range(bursts):
        campaign.corrupt_random_rams(engine, corruptions)
        if churn:
            campaign.churn_edges(engine, removals=churn, additions=churn)
        burst_rounds.append(engine.run_to_quiescence())
    colors_by_vertex = algorithm.final_colors(engine.graph, engine.rams)
    colors = [colors_by_vertex[v] for v in sorted(colors_by_vertex)]
    return SelfStabReport(colors, cold_rounds, burst_rounds, engine.is_legal())


def _alg_selfstab_exact(
    graph, backend="auto", seed=1, bursts=2, corruptions=8, churn=0, **params
):
    """Theorem 7.5: self-stabilizing exact (Delta+1)-coloring under faults."""
    from repro.selfstab import SelfStabExactColoring

    return _run_selfstab(
        SelfStabExactColoring, graph, backend, seed, bursts, corruptions, churn
    )


def _alg_selfstab_coloring(
    graph, backend="auto", seed=1, bursts=2, corruptions=8, churn=0, **params
):
    """Lemma 4.2: self-stabilizing O(Delta)-coloring under faults."""
    from repro.selfstab import SelfStabColoring

    return _run_selfstab(
        SelfStabColoring, graph, backend, seed, bursts, corruptions, churn
    )


register_algorithm("cor36", _alg_cor36)
register_algorithm("exact", _alg_exact)
register_algorithm("one-plus-eps", _alg_one_plus_eps)
register_algorithm("sublinear", _alg_sublinear)
register_algorithm("selfstab", _alg_selfstab_exact)
register_algorithm("selfstab-coloring", _alg_selfstab_coloring)
register_algorithm("bek", _alg_bek)
register_algorithm("kuhn-wattenhofer", _alg_kuhn_wattenhofer)
register_algorithm("defective", _alg_defective)
register_algorithm("edge", _alg_edge)
register_algorithm("bitround", _alg_bitround)
register_algorithm("bitround-edge", _alg_bitround_edge)
register_algorithm("greedy", _alg_greedy)
register_algorithm("random-trial", _alg_random_trial)
register_algorithm("selfstab-rank", _alg_selfstab_rank)


# -- specs and outcomes --------------------------------------------------------------


class JobSpec:
    """One unit of work, described entirely by value (hence picklable).

    ``graph`` is a :func:`build_graph` dict; ``algorithm`` a registry name;
    ``backend`` a :mod:`repro.runtime.backends` name; ``params`` extra
    keyword arguments for the algorithm; ``label`` an optional display name.
    """

    __slots__ = ("algorithm", "graph", "backend", "seed", "params", "label")

    def __init__(
        self,
        algorithm="cor36",
        graph=None,
        backend="auto",
        seed=1,
        params=None,
        label=None,
    ):
        self.algorithm = algorithm
        self.graph = dict(graph) if graph else {"family": "regular", "n": 64, "degree": 6}
        self.backend = backend
        self.seed = seed
        self.params = dict(params) if params else {}
        self.label = label

    @property
    def job_id(self):
        """Stable human-readable identity (used to tag stitched telemetry)."""
        if self.label:
            return self.label
        graph = self.graph
        parts = [self.algorithm, graph.get("family", "regular")]
        for key in ("n", "degree", "prob", "rows", "cols", "radius"):
            if key in graph:
                parts.append("%s%s" % (key, graph[key]))
        parts.append("s%d" % self.seed)
        return "-".join(str(part) for part in parts)

    def to_dict(self):
        """The spec as a plain dict (the wire format, ``schema_version``-stamped)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "graph": dict(self.graph),
            "backend": self.backend,
            "seed": self.seed,
            "params": dict(self.params),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a spec from :meth:`to_dict` output.

        Tolerant reader: a dict stamped with a *newer* ``schema_version``
        (from a registry or wire peer running a later release) parses on the
        fields this release knows, after a
        :class:`~repro.runtime.results.SchemaVersionWarning`.
        """
        check_schema_version(data, kind="JobSpec")
        return cls(
            algorithm=data.get("algorithm", "cor36"),
            graph=data.get("graph"),
            backend=data.get("backend", "auto"),
            seed=data.get("seed", 1),
            params=data.get("params"),
            label=data.get("label"),
        )

    def __repr__(self):
        return "JobSpec(%s)" % self.job_id


class JobOutcome:
    """The parent-side view of one finished job (success, error, or timeout)."""

    __slots__ = ("spec", "ok", "summary", "error", "seconds", "attempts", "timed_out", "telemetry", "worker")

    def __init__(self, spec, envelope, attempts, timed_out=False):
        self.spec = spec
        self.ok = bool(envelope.get("ok"))
        self.summary = envelope.get("summary")
        self.error = envelope.get("error")
        self.seconds = envelope.get("seconds", 0.0)
        self.attempts = attempts
        self.timed_out = timed_out
        self.telemetry = envelope.get("telemetry") or []
        # Executing pid — kept off to_dict: which worker ran a job is
        # scheduling, not result, and inline-vs-pool outcome dicts must match.
        self.worker = envelope.get("worker")

    @property
    def colors(self):
        """The final coloring (None unless the job succeeded)."""
        if self.summary:
            return self.summary["payload"].get("colors")
        return None

    @property
    def rounds(self):
        """Round count of the run (None unless the job succeeded)."""
        return self.summary["rounds"] if self.summary else None

    @property
    def num_colors(self):
        """Distinct colors used (None unless the job succeeded)."""
        return self.summary["num_colors"] if self.summary else None

    def to_dict(self):
        """JSON-serializable record (telemetry omitted; it is stitched)."""
        return {
            "job": self.spec.to_dict(),
            "job_id": self.spec.job_id,
            "ok": self.ok,
            "summary": self.summary,
            "error": self.error,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }

    def __repr__(self):
        state = "ok" if self.ok else ("timeout" if self.timed_out else "error")
        return "JobOutcome(%s, %s, attempts=%d)" % (self.spec.job_id, state, self.attempts)


# -- worker-side execution -----------------------------------------------------------


def execute_job(spec, collect_telemetry=False, graph=None, trace=None):
    """Run one spec in this process; return the envelope dict.

    Never raises: algorithm failures come back as ``ok=False`` with the
    exception type, message, and traceback, so a crashing job cannot take a
    worker (or the pool protocol) down with it.

    ``graph`` short-circuits materialization with an already-built adjacency
    view — the shared-memory fan-out hands workers an attached
    :class:`~repro.parallel.shm.SharedGraphView` here.  Results are
    bit-identical either way: the view answers every query the generated
    graph would.

    ``trace`` is the parent collector's
    :meth:`~repro.obs.core.Telemetry.trace_context`: when telemetry is
    collected, the worker-side capture joins that trace and labels its lane
    with the job id, so the exported records land on a distinct
    ``(pid, source)`` timeline lane after stitching.  The envelope carries
    the executing ``worker`` pid for the parent's utilization counters.
    """
    start = time.perf_counter()
    records = []
    try:
        fn = resolve_algorithm(spec.algorithm)
        if graph is None:
            if spec.backend == "oocore":
                # Out-of-core jobs stream the generator into (cached) memmap
                # shards instead of materializing a StaticGraph in RAM.
                from repro.oocore.writers import ensure_sharded

                graph = ensure_sharded(spec.graph)
            else:
                graph = build_graph(spec.graph)
        if collect_telemetry:
            trace = trace or {}
            with obs.capture(
                source=spec.job_id, trace_id=trace.get("trace_id")
            ) as tel:
                from repro.obs import flight

                profiler = flight.maybe_profiler(tel)
                try:
                    result = fn(
                        graph, backend=spec.backend, seed=spec.seed, **spec.params
                    )
                finally:
                    if profiler is not None:
                        profiler.stop()
            records = list(tel.events) + [tel.snapshot()]
        else:
            result = fn(graph, backend=spec.backend, seed=spec.seed, **spec.params)
        return {
            "ok": True,
            "summary": summarize(result),
            "error": None,
            "seconds": time.perf_counter() - start,
            "telemetry": records,
            "worker": os.getpid(),
        }
    except Exception as exc:
        return {
            "ok": False,
            "summary": None,
            "error": {
                "kind": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            "seconds": time.perf_counter() - start,
            "telemetry": records,
            "worker": os.getpid(),
        }


def execute_payload(payload):
    """Pool entry point for one job: rebuild the spec, execute, return dict.

    When the parent annotated the payload with shared-memory metadata, the
    graph comes from an attached segment instead of a rebuild, and the final
    color list leaves through the job's color segment instead of the result
    pickle.  Every shm failure degrades to the by-value path silently — the
    envelope is bit-identical either way.
    """
    spec = JobSpec.from_dict(payload["spec"])
    graph = None
    view = None
    if payload.get("shm_graph") is not None:
        from repro.parallel import shm

        try:
            view = shm.attach_graph(payload["shm_graph"])
            graph = view
        except Exception:
            graph = None
    try:
        envelope = execute_job(
            spec,
            collect_telemetry=payload.get("telemetry", False),
            graph=graph,
            trace=payload.get("trace"),
        )
        if payload.get("shm_colors") is not None:
            from repro.parallel import shm

            try:
                shm.offload_colors(envelope, payload["shm_colors"])
            except Exception:
                pass
        return envelope
    finally:
        if view is not None:
            view.detach()


def execute_chunk(payloads):
    """Pool entry point for a chunk: one IPC round-trip, many jobs.

    When the parent attached a heartbeat board to the payloads, the worker
    beats before every job and once after the chunk, so the parent's
    watchdog can tell "still grinding through the chunk" from "wedged".
    """
    board = payloads[0].get("heartbeat") if payloads else None
    if board is None:
        return [execute_payload(payload) for payload in payloads]
    from repro.obs import flight

    results = []
    for payload in payloads:
        flight.beat(board)
        results.append(execute_payload(payload))
    flight.beat(board)
    return results
