"""The sharded job runner and the ``repro.run`` facade functions.

:class:`JobRunner` executes :class:`~repro.parallel.jobs.JobSpec` lists:

* **process mode** — a ``multiprocessing`` pool (``fork`` start method when
  the platform offers it, so custom :func:`~repro.parallel.jobs.register_algorithm`
  entries propagate to workers) with *chunked dispatch*: jobs are grouped
  into chunks and each chunk crosses the process boundary once, amortizing
  pickling over many small jobs.
* **inline mode** — the same jobs executed in this process, used for
  ``workers=1`` and as the graceful fallback whenever multiprocessing (or
  NumPy, whose absence makes fork-per-job overhead pointless) is
  unavailable.  Results are bit-identical either way, because a job is a
  pure function of its spec.

Per-job **timeout**: with ``timeout=T`` set, jobs are dispatched one per
task and the parent waits at most ``T`` seconds per result; on expiry the
pool is terminated and rebuilt (the only way to reclaim a stuck worker), the
offending job is charged one attempt, and undelivered jobs are re-dispatched
uncharged.  **Bounded retry**: a job that errors or times out is re-run up
to ``retries`` additional times before its failure becomes the final
outcome.

**Telemetry stitching**: when the parent's :mod:`repro.obs` collector is
live, each worker captures its own collector around the job and ships the
records back inside the result envelope; the runner absorbs every segment
into the parent stream *in job order* (tagged ``job=<job_id>``), then logs
one ``parallel.job`` event per job — so ``--telemetry out.jsonl`` on a
parallel CLI run produces a single merged stream.  Payloads also carry the
parent collector's trace context, so worker records share the run's
``trace_id`` and land on per-job ``(pid, source)`` timeline lanes.

**Worker health watchdog**: while telemetry is live, pool payloads carry a
:class:`~repro.obs.flight.HeartbeatBoard` path that workers touch between
chunk jobs; the parent polls the board while waiting on results and emits
``worker.stalled`` — *before* the per-job timeout fires — plus
``worker.restarted`` after a timeout pool rebuild and per-worker
utilization counters (``parallel.worker.jobs``).  ``REPRO_DISABLE_WATCHDOG=1``
(or ``watchdog=False``) switches the machinery off; with telemetry disabled
it never engages at all.
"""

import os
import time

from repro.obs import core as obs
from repro.parallel.jobs import (
    JobOutcome,
    JobSpec,
    execute_chunk,
    execute_job,
)

__all__ = ["JobRunner", "run", "run_many", "run_sweep", "sweep_specs"]


def _default_workers():
    """Worker count when unspecified: one per CPU (floor 1)."""
    return max(1, os.cpu_count() or 1)


def _multiprocessing_context():
    """The preferred multiprocessing context, or None when unusable.

    ``fork`` keeps parent-registered algorithms visible in workers; platforms
    without it (Windows, some macOS configurations) get the default start
    method, and platforms where multiprocessing itself is broken (missing
    ``_multiprocessing``, sandboxed semaphores) report None — the runner
    then falls back to inline execution.
    """
    try:
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
    except (ImportError, ValueError, OSError):
        return None


class JobRunner:
    """Executes job specs across a worker pool, with timeout and retry.

    Parameters
    ----------
    workers:
        Process count (default: CPU count).  ``workers=1`` runs inline.
    timeout:
        Per-job wall-clock budget in seconds (None = unlimited).  Enforced
        only in process mode — inline execution cannot preempt a job.
    retries:
        Additional attempts for a job that errors or times out (default 1).
    chunk_size:
        Jobs per pool task.  Default: jobs split evenly, four chunks per
        worker (ceiling 1); forced to 1 when ``timeout`` is set so a reset
        charges exactly the offending job.
    mode:
        ``"auto"`` (process pool when useful and available, else inline),
        ``"process"`` (force the pool), or ``"inline"`` (force in-process).
    shm:
        ``None`` (zero-copy shared-memory fan-out when available — the
        default), ``True`` (require it; RuntimeError when unavailable), or
        ``False`` (force the by-value protocol).  Only meaningful in process
        mode; results are bit-identical either way.
    watchdog:
        ``None`` (heartbeat monitoring whenever telemetry is live in process
        mode — the default) or ``False`` (never).  ``REPRO_DISABLE_WATCHDOG=1``
        forces it off regardless.
    on_status:
        Optional callback ``fn(spec, status)`` observing per-job lifecycle
        transitions: ``"running"`` when a job is dispatched (again on each
        retry), then exactly one terminal ``"done"`` / ``"failed"`` /
        ``"timeout"`` as its envelope finalizes — *before* the whole batch
        completes, which is what lets the experiment service persist status
        rows while a batch is still in flight.  Callback exceptions are
        swallowed: observation must never take down the run.  The attribute
        is plain and may be reassigned between ``map_jobs`` calls.
    """

    def __init__(self, workers=None, timeout=None, retries=1, chunk_size=None, mode="auto", shm=None, watchdog=None, on_status=None):
        if mode not in ("auto", "process", "inline"):
            raise ValueError("unknown runner mode %r" % mode)
        self.workers = _default_workers() if workers is None else max(1, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.chunk_size = chunk_size
        self.mode = mode
        self.shm = shm
        self.watchdog = watchdog
        self.on_status = on_status
        self._context = None
        self._pool = None
        self._manager = None
        self._watchdog = None

    def _notify(self, spec, status):
        """Report one lifecycle transition to ``on_status`` (never raises)."""
        if self.on_status is None:
            return
        try:
            self.on_status(spec, status)
        except Exception:
            pass


    # -- pool lifecycle ----------------------------------------------------------

    def _use_pool(self):
        """Decide process-vs-inline once per runner (memoizes the context)."""
        if self.mode == "inline" or self.workers <= 1:
            return False
        if self._context is None:
            self._context = _multiprocessing_context()
        if self._context is None:
            if self.mode == "process":
                raise RuntimeError("multiprocessing is unavailable; use mode='inline'")
            return False
        if self.mode == "auto":
            from repro.runtime.csr import numpy_available

            if not numpy_available():
                # Reference-engine jobs are dominated by Python interpretation;
                # per-process interpreter copies rarely pay for themselves, and
                # ISSUE-level policy is to degrade to inline without NumPy.
                return False
        return True

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._context.Pool(processes=self.workers)
        return self._pool

    def _reset_pool(self):
        """Kill a pool containing a stuck worker and start fresh."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self):
        """Release the worker pool and any shared-memory segments (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._manager is not None:
            self._manager.close()
            self._manager = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- execution ---------------------------------------------------------------

    def submit(self, spec):
        """Run one job; returns its :class:`JobOutcome`."""
        return self.map_jobs([spec])[0]

    def run_sweep(self, ns, degrees, seeds, algorithm="cor36", backend="auto", family="regular", params=None):
        """Run the cartesian product sweep; see :func:`sweep_specs`."""
        return self.map_jobs(
            sweep_specs(ns, degrees, seeds, algorithm=algorithm, backend=backend, family=family, params=params)
        )

    def map_jobs(self, specs):
        """Run every spec; returns outcomes in input order.

        Failures never raise out of the runner — inspect ``outcome.ok`` /
        ``outcome.error`` / ``outcome.timed_out``.
        """
        specs = [s if isinstance(s, JobSpec) else JobSpec.from_dict(dict(s)) for s in specs]
        if not specs:
            return []
        tel = obs.active()
        collect = tel.enabled
        self._watchdog = None
        if self._use_pool():
            outcomes = self._map_pool(specs, collect)
        else:
            outcomes = self._map_inline(specs, collect)
        if collect:
            self._stitch(tel, outcomes)
        return outcomes

    def _map_inline(self, specs, collect):
        outcomes = []
        for spec in specs:
            attempts = 0
            while True:
                attempts += 1
                self._notify(spec, "running")
                envelope = execute_job(spec, collect_telemetry=collect)
                if envelope["ok"] or attempts > self.retries:
                    break
            self._notify(spec, "done" if envelope["ok"] else "failed")
            outcomes.append(JobOutcome(spec, envelope, attempts))
        return outcomes

    def _chunks(self, indices):
        """Split pending job indices into dispatch chunks."""
        if self.timeout is not None:
            size = 1
        elif self.chunk_size is not None:
            size = max(1, int(self.chunk_size))
        else:
            size = max(1, -(-len(indices) // (self.workers * 4)))
        return [indices[i:i + size] for i in range(0, len(indices), size)]

    def _shm_plane(self, specs, payloads):
        """Annotate payloads with shared-memory metadata; None when by-value.

        The plane's segments deliberately outlive ``_reset_pool``: jobs
        re-dispatched after a timeout attach to the same names.  Everything
        is released when each job finalizes, with ``close``/``atexit`` as
        backstops.
        """
        if self.shm is False:
            return None
        from repro.parallel import shm as shm_mod

        if not shm_mod.shm_available():
            if self.shm is True:
                raise RuntimeError(
                    "shared-memory fan-out requested but unavailable "
                    "(no multiprocessing.shared_memory, no NumPy, or REPRO_DISABLE_SHM=1)"
                )
            return None
        if self._manager is None:
            self._manager = shm_mod.SegmentManager()
        plane = shm_mod.ShmPlane(self._manager)
        plane.annotate(specs, payloads)
        return plane

    def _make_watchdog(self, tel):
        """A watchdog over a fresh heartbeat board, or None when switched off.

        The stall threshold is clamped under the per-job timeout (when one is
        set): a ``worker.stalled`` event that can only fire after the timeout
        already killed the pool would be useless.
        """
        if self.watchdog is False or not tel.enabled:
            return None
        from repro.obs import flight

        if not flight.watchdog_enabled():
            return None
        stall = flight.stall_seconds()
        if self.timeout is not None:
            stall = min(stall, max(float(self.timeout) * 0.5, 0.05))
        return flight.WorkerWatchdog(tel, flight.HeartbeatBoard(), stall_after=stall)

    def _wait(self, handle, njobs, watchdog):
        """Wait for one chunk's results, polling the watchdog meanwhile.

        Without a watchdog this is a plain blocking ``get``.  With one, the
        wait is sliced into ``poll_interval`` steps so heartbeat silence
        surfaces as ``worker.stalled`` long before the chunk deadline;
        ``multiprocessing.TimeoutError`` is raised once the full per-chunk
        budget expires, exactly like the blocking path.
        """
        import multiprocessing

        total = self.timeout * njobs if self.timeout is not None else None
        if watchdog is None:
            return handle.get(total)
        deadline = None if total is None else time.monotonic() + total
        while True:
            step = watchdog.poll_interval
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise multiprocessing.TimeoutError
                step = min(step, remaining)
            try:
                return handle.get(step)
            except multiprocessing.TimeoutError:
                watchdog.poll()

    def _map_pool(self, specs, collect):
        import multiprocessing

        payloads = [{"spec": spec.to_dict(), "telemetry": collect} for spec in specs]
        attempts = [0] * len(specs)
        timed_out = [False] * len(specs)
        envelopes = [None] * len(specs)
        pending = list(range(len(specs)))
        watchdog = None
        if collect:
            tel = obs.active()
            trace = tel.trace_context() if hasattr(tel, "trace_context") else None
            watchdog = self._make_watchdog(tel)
            for payload in payloads:
                if trace is not None:
                    payload["trace"] = trace
                if watchdog is not None:
                    payload["heartbeat"] = watchdog.board.path
        self._watchdog = watchdog
        plane = self._shm_plane(specs, payloads)

        try:
            while pending:
                pool = self._ensure_pool()
                handles = [
                    (chunk, pool.apply_async(execute_chunk, ([payloads[i] for i in chunk],)))
                    for chunk in self._chunks(pending)
                ]
                for chunk, _handle in handles:
                    for i in chunk:
                        self._notify(specs[i], "running")
                next_pending = []
                aborted = False
                for chunk, handle in handles:
                    if aborted:
                        # The pool died reclaiming an earlier stuck worker; these
                        # chunks were lost undelivered — re-dispatch uncharged.
                        next_pending.extend(chunk)
                        continue
                    try:
                        results = self._wait(handle, len(chunk), watchdog)
                    except multiprocessing.TimeoutError:
                        self._reset_pool()
                        if watchdog is not None:
                            watchdog.notice_restart()
                        aborted = True
                        for i in chunk:
                            attempts[i] += 1
                            timed_out[i] = True
                            if attempts[i] <= self.retries:
                                next_pending.append(i)
                            else:
                                envelopes[i] = _timeout_envelope(self.timeout)
                                if plane is not None:
                                    plane.finalize(i, envelopes[i])
                                self._notify(specs[i], "timeout")
                        continue
                    for i, envelope in zip(chunk, results):
                        attempts[i] += 1
                        timed_out[i] = False
                        if not envelope["ok"] and attempts[i] <= self.retries:
                            next_pending.append(i)
                        else:
                            if plane is not None:
                                plane.finalize(i, envelope)
                            envelopes[i] = envelope
                            self._notify(specs[i], "done" if envelope["ok"] else "failed")
                pending = next_pending
        finally:
            if plane is not None:
                plane.close()
            if watchdog is not None:
                watchdog.board.close()

        return [
            JobOutcome(spec, envelopes[i], attempts[i], timed_out=timed_out[i])
            for i, spec in enumerate(specs)
        ]

    def _stitch(self, tel, outcomes):
        """Merge worker telemetry segments into the parent stream, in job order."""
        watchdog = self._watchdog
        for outcome in outcomes:
            if outcome.telemetry:
                tel.absorb(outcome.telemetry, job=outcome.spec.job_id)
            tel.counter("parallel.jobs", ok=outcome.ok)
            if outcome.attempts > 1:
                tel.counter("parallel.retries", value=outcome.attempts - 1)
            if outcome.timed_out:
                tel.counter("parallel.timeouts")
            if watchdog is not None:
                watchdog.record_job(outcome.worker)
            tel.event(
                "parallel.job",
                job=outcome.spec.job_id,
                ok=outcome.ok,
                worker=outcome.worker,
                seconds=outcome.seconds,
                attempts=outcome.attempts,
                timed_out=outcome.timed_out,
            )


def _timeout_envelope(timeout):
    return {
        "ok": False,
        "summary": None,
        "error": {
            "kind": "TimeoutError",
            "message": "job exceeded the %.3gs per-job budget" % timeout,
            "traceback": None,
        },
        "seconds": timeout,
        "telemetry": [],
    }


# -- facade --------------------------------------------------------------------------


def run(job, **kwargs):
    """Run one job in this process; returns its :class:`JobOutcome`.

    ``job`` is a :class:`JobSpec` or its dict form.  Keyword arguments
    (``retries``, ...) forward to :class:`JobRunner`; single jobs always run
    inline — there is nothing to shard.
    """
    kwargs.setdefault("mode", "inline")
    kwargs.setdefault("workers", 1)
    with JobRunner(**kwargs) as runner:
        return runner.submit(job)


def run_many(jobs, workers=None, timeout=None, retries=1, chunk_size=None, mode="auto", shm=None):
    """Run a list of jobs across a worker pool; outcomes in input order.

    The multi-job entry point of the facade: builds a :class:`JobRunner`,
    maps the jobs, closes the pool.  Bit-identical to running each job with
    :func:`run` — only the wall-clock differs.
    """
    with JobRunner(workers=workers, timeout=timeout, retries=retries, chunk_size=chunk_size, mode=mode, shm=shm) as runner:
        return runner.map_jobs(jobs)


def sweep_specs(ns, degrees, seeds, algorithm="cor36", backend="auto", family="regular", params=None):
    """The cartesian product ``ns x degrees x seeds`` as a JobSpec list.

    ``family`` must accept ``n``/``degree``-style parameters (``regular``
    uses both; families ignoring ``degree`` still enumerate it).
    """
    specs = []
    for n in ns:
        for degree in degrees:
            for seed in seeds:
                graph = {"family": family, "n": n, "degree": degree, "seed": seed}
                specs.append(
                    JobSpec(algorithm=algorithm, graph=graph, backend=backend, seed=seed, params=params)
                )
    return specs


def run_sweep(ns, degrees, seeds, algorithm="cor36", backend="auto", family="regular", params=None, workers=None, timeout=None, retries=1, mode="auto", shm=None):
    """Sweep the parameter grid across workers; outcomes in grid order."""
    return run_many(
        sweep_specs(ns, degrees, seeds, algorithm=algorithm, backend=backend, family=family, params=params),
        workers=workers,
        timeout=timeout,
        retries=retries,
        mode=mode,
        shm=shm,
    )
