"""Streaming shard writers: graphs generated straight into memmap shards.

Two generator families are emitted without ever materializing a
:class:`~repro.runtime.graph.StaticGraph` (whose Python-object adjacency
costs ~112 bytes per slot):

* :func:`write_random_regular` — the stub-matching construction with the
  switch repair, replayed on flat int64 arrays plus a small defect-delta
  dict.  Consumes the **identical MT19937 draw sequence** as
  :func:`repro.graphgen.generators.random_regular` (the same
  ``_np_rng`` transplant, the same ``rng.randrange`` replay), so the edge
  set — and therefore every downstream color — is bit-identical at any
  size where both run.
* :func:`write_gnp` — G(n, p) in two passes over the *same* per-block
  uniform draws as :func:`repro.graphgen.generators.gnp_graph`: pass A
  accumulates degrees, pass B re-runs the stream and scatters neighbors
  through per-vertex cursors.  Peak scratch is one RNG block, independent
  of the edge count.

Both finish through :func:`finalize_shards`, which partitions the vertex
range, computes each shard's halo table, localizes the neighbor ids into
``lindices.i64``, and writes ``meta.json`` — after which
:class:`~repro.oocore.store.ShardedCSRGraph` can open the directory.

:func:`shard_static_graph` converts an already-built in-memory graph (any
family) to the same format; :func:`ensure_sharded` is the disk-cached
front door the job runner and backend factory use.
"""

import hashlib
import json
import os
import random

from repro.graphgen.generators import _GNP_BLOCK, _np_rng, _np_rng_sync_back
from repro.oocore.store import (
    COLORS_FILE,
    FORMAT_VERSION,
    HALO_FILE,
    INDICES_FILE,
    INDPTR_FILE,
    LINDICES_FILE,
    META_FILE,
    ShardedCSRGraph,
    _require_numpy,
    default_shards,
    partition_ranges,
    release_pages,
    scratch_root,
)

__all__ = [
    "ensure_sharded",
    "finalize_shards",
    "shard_static_graph",
    "write_edge_arrays",
    "write_gnp",
    "write_random_regular",
]


def _create(path, name, count):
    """A fresh int64 memmap file of ``count`` entries (zero-length safe)."""
    np = _require_numpy()
    full = os.path.join(path, name)
    if count == 0:
        with open(full, "wb"):
            pass
        return np.zeros(0, dtype=np.int64)
    return np.memmap(full, dtype=np.int64, mode="w+", shape=(count,))


def finalize_shards(path, n, m, indptr, indices, shards=None, provenance=None):
    """Partition, localize, and stamp a shard directory; returns the graph.

    ``indptr``/``indices`` are the already-written global CSR arrays (memmap
    or ndarray).  Writes ``lindices.i64``, ``halo.i64``, a zeroed
    ``colors.i64``, and ``meta.json``.
    """
    np = _require_numpy()
    if shards is None:
        shards = default_shards(n, m)
    ranges = partition_ranges(np, indptr, n, shards)
    max_degree = int(np.diff(np.asarray(indptr)).max()) if n else 0

    lindices = _create(path, LINDICES_FILE, 2 * m)
    halo_chunks = []
    halo_offsets = [0]
    for lo, hi in ranges:
        start, end = int(indptr[lo]), int(indptr[hi])
        sl = np.array(indices[start:end])
        outside = (sl < lo) | (sl >= hi)
        halo = np.unique(sl[outside])
        k = hi - lo
        local = np.empty_like(sl)
        inside = ~outside
        local[inside] = sl[inside] - lo
        local[outside] = k + np.searchsorted(halo, sl[outside])
        if end > start:
            lindices[start:end] = local
        halo_chunks.append(halo)
        halo_offsets.append(halo_offsets[-1] + halo.shape[0])
    halo_file = _create(path, HALO_FILE, halo_offsets[-1])
    for i, chunk in enumerate(halo_chunks):
        if chunk.shape[0]:
            halo_file[halo_offsets[i]:halo_offsets[i + 1]] = chunk
    colors = _create(path, COLORS_FILE, n)
    for array in (lindices, halo_file, colors):
        release_pages(array)

    meta = {
        "format": FORMAT_VERSION,
        "n": int(n),
        "m": int(m),
        "max_degree": max_degree,
        "ranges": [[int(a), int(b)] for a, b in ranges],
        "halo_offsets": [int(x) for x in halo_offsets],
        "provenance": provenance or {},
    }
    with open(os.path.join(path, META_FILE), "w") as handle:
        json.dump(meta, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return ShardedCSRGraph(path, meta)


def write_edge_arrays(path, n, u, v, shards=None, provenance=None):
    """Shards from edge endpoint arrays (``u < v`` elementwise, sorted by
    ``(u, v)``, no duplicates) — the shared CSR fill of both writers.

    The fill reproduces ``StaticGraph``'s sorted neighbor lists exactly:
    for vertex ``x`` the backward neighbors (edges where ``x`` is the larger
    endpoint) are all ``< x`` and arrive in ascending order, then the
    forward ones (all ``> x``), also ascending — one sorted row.
    """
    np = _require_numpy()
    os.makedirs(path, exist_ok=True)
    m = int(u.shape[0])
    degrees = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
    indptr = _create(path, INDPTR_FILE, n + 1)
    if n:
        indptr[0] = 0
        np.cumsum(degrees, out=indptr[1:])
    indices = _create(path, INDICES_FILE, 2 * m)
    if m:
        bwd_count = np.bincount(v, minlength=n)
        arange = np.arange(m, dtype=np.int64)
        # Backward half: group by v (stable keeps u ascending within a group).
        order = np.argsort(v, kind="stable")
        vs = v[order]
        indices[np.asarray(indptr)[vs] + (arange - np.searchsorted(vs, vs))] = u[order]
        # Forward half: already grouped by u with v ascending.
        indices[
            np.asarray(indptr)[u] + bwd_count[u] + (arange - np.searchsorted(u, u))
        ] = v
    graph = finalize_shards(
        path, n, m, indptr, indices, shards=shards, provenance=provenance
    )
    release_pages(indptr)
    release_pages(indices)
    return graph


def write_random_regular(path, n, d, seed, shards=None):
    """Stream a random d-regular graph into shards, bit-identical to
    :func:`repro.graphgen.generators.random_regular`.

    The stub keys, the stable argsort, and every repair draw replay the
    in-memory generator's exact RNG sequence; only the bookkeeping differs —
    pair endpoints live in two int64 arrays and the per-edge multiplicities
    in a sorted base-count table plus a small delta dict touched only by
    repairs, instead of an O(m) Python dict.
    """
    np = _require_numpy()
    provenance = {"generator": "random_regular", "n": n, "d": d, "seed": seed}
    if n * d % 2:
        raise ValueError("n * d must be even for a d-regular graph")
    if not 0 <= d < n:
        raise ValueError("need 0 <= d < n (got d=%d, n=%d)" % (d, n))
    os.makedirs(path, exist_ok=True)
    if d == 0:
        return write_edge_arrays(
            path, n, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            shards=shards, provenance=provenance,
        )
    if d == n - 1:
        iu, iv = np.triu_indices(n, 1)
        return write_edge_arrays(
            path, n, iu.astype(np.int64), iv.astype(np.int64),
            shards=shards, provenance=provenance,
        )
    rng = random.Random(seed)
    stub_count = n * d
    state = _np_rng(rng, np)
    keys = state.random_sample(stub_count)
    _np_rng_sync_back(rng, state)
    owners = np.argsort(keys, kind="stable")
    del keys
    owners //= d
    pu = owners[0::2].copy()
    pv = owners[1::2].copy()
    del owners
    npairs = stub_count // 2
    lo = np.minimum(pu, pv)
    hi = np.maximum(pu, pv)
    pair_key = lo * n + hi
    self_mask = pu == pv
    del lo, hi
    uniq, base = np.unique(pair_key[~self_mask], return_counts=True)

    delta = {}

    def count(a, b):
        key = a * n + b if a < b else b * n + a
        i = int(np.searchsorted(uniq, key))
        value = int(base[i]) if i < uniq.shape[0] and uniq[i] == key else 0
        return value + delta.get(int(key), 0)

    def bump(a, b, by):
        key = int(a * n + b if a < b else b * n + a)
        delta[key] = delta.get(key, 0) + by

    # Defective pairs: self-loops, or multiplicity > 1.  The scalar
    # generator builds its stack descending and pops from the end, i.e.
    # processes ascending t — same here.
    idx = np.searchsorted(uniq, pair_key)
    idx[idx >= uniq.shape[0]] = 0
    multi = np.zeros(npairs, dtype=bool)
    if uniq.shape[0]:
        found = uniq[idx] == pair_key
        multi[found] = base[idx[found]] > 1
    stack = np.nonzero(self_mask | multi)[0][::-1].tolist()
    del pair_key, self_mask, idx, multi
    attempts = 0
    limit = 200 * npairs + 1000
    while stack:
        t = stack.pop()
        u, v = int(pu[t]), int(pv[t])
        if u != v and count(u, v) == 1:
            continue  # healed by an earlier switch
        while True:
            attempts += 1
            if attempts > limit:
                raise RuntimeError(
                    "random_regular(%d, %d, seed=%r) failed to repair the "
                    "stub matching" % (n, d, seed)
                )
            s = rng.randrange(npairs)
            if s == t:
                continue
            x, y = int(pu[s]), int(pv[s])
            # Switch (u, v), (x, y) -> (u, y), (x, v) when it stays simple.
            if u == y or x == v:
                continue
            if u != v:
                bump(u, v, -1)
            if x != y:
                bump(x, y, -1)
            new_a = (u, y) if u < y else (y, u)
            new_b = (x, v) if x < v else (v, x)
            if new_a != new_b and not count(*new_a) and not count(*new_b):
                bump(*new_a, 1)
                bump(*new_b, 1)
                pu[t], pv[t] = u, y
                pu[s], pv[s] = x, v
                break
            if u != v:
                bump(u, v, 1)
            if x != y:
                bump(x, y, 1)
    # Effective multiplicities are all 0 or 1 now; the surviving keys,
    # numerically sorted, are the lexicographically sorted edge list.
    eff = base.astype(np.int64)
    extra = []
    for key, dv in delta.items():
        i = int(np.searchsorted(uniq, key))
        if i < uniq.shape[0] and uniq[i] == key:
            eff[i] += dv
        elif dv > 0:
            extra.append(key)
    final = uniq[eff > 0]
    if extra:
        final = np.sort(np.concatenate([final, np.array(extra, dtype=np.int64)]))
    return write_edge_arrays(
        path, n, final // n, final % n, shards=shards, provenance=provenance
    )


def write_gnp(path, n, p, seed, shards=None):
    """Stream G(n, p) into shards, bit-identical to
    :func:`repro.graphgen.generators.gnp_graph`.

    Two passes over the identical block-RNG stream: degrees first, then a
    cursor-scatter fill.  Within a block the edges come out in the scalar
    loop's row-major ``(i, j)`` order, so every vertex's backward neighbors
    (ascending ``i``) land before its forward ones (ascending ``j``) — the
    sorted rows ``StaticGraph`` would build.
    """
    np = _require_numpy()
    provenance = {"generator": "gnp", "n": n, "p": p, "seed": seed}
    os.makedirs(path, exist_ok=True)

    def blocks():
        rng = random.Random(seed)
        state = _np_rng(rng, np)
        start_row = 0
        while start_row < n - 1:
            end_row = start_row
            count = 0
            while end_row < n - 1 and count + (n - 1 - end_row) <= _GNP_BLOCK:
                count += n - 1 - end_row
                end_row += 1
            if end_row == start_row:  # a single row exceeding the block cap
                end_row += 1
                count = n - 1 - start_row
            lengths = np.arange(
                n - 1 - start_row, n - 1 - end_row, -1, dtype=np.int64
            )
            starts = np.zeros(end_row - start_row, dtype=np.int64)
            np.cumsum(lengths[:-1], out=starts[1:])
            hits = np.nonzero(state.random_sample(count) < p)[0]
            if hits.size:
                row_idx = np.searchsorted(starts, hits, side="right") - 1
                i_arr = row_idx + start_row
                j_arr = i_arr + 1 + (hits - starts[row_idx])
                yield i_arr, j_arr
            start_row = end_row

    degrees = np.zeros(n, dtype=np.int64)
    m = 0
    for i_arr, j_arr in blocks():
        degrees += np.bincount(i_arr, minlength=n)
        degrees += np.bincount(j_arr, minlength=n)
        m += i_arr.shape[0]
    indptr = _create(path, INDPTR_FILE, n + 1)
    if n:
        indptr[0] = 0
        np.cumsum(degrees, out=indptr[1:])
    indices = _create(path, INDICES_FILE, 2 * m)
    cursor = np.asarray(indptr)[:-1].copy() if n else degrees
    for i_arr, j_arr in blocks():
        cnt = i_arr.shape[0]
        verts = np.empty(2 * cnt, dtype=np.int64)
        nbrs = np.empty(2 * cnt, dtype=np.int64)
        verts[0::2] = i_arr
        verts[1::2] = j_arr
        nbrs[0::2] = j_arr
        nbrs[1::2] = i_arr
        order = np.argsort(verts, kind="stable")
        sv = verts[order]
        slots = cursor[sv] + (
            np.arange(2 * cnt, dtype=np.int64) - np.searchsorted(sv, sv)
        )
        indices[slots] = nbrs[order]
        cursor += np.bincount(verts, minlength=n)
    graph = finalize_shards(
        path, n, m, indptr, indices, shards=shards, provenance=provenance
    )
    release_pages(indptr)
    release_pages(indices)
    return graph


def shard_static_graph(graph, path, shards=None, provenance=None):
    """Convert an in-memory :class:`StaticGraph` (or CSR-bearing drop-in)
    to a shard directory — the bridge for families without a streaming
    writer and for ``backend=\"oocore\"`` on an already-built graph."""
    np = _require_numpy()
    os.makedirs(path, exist_ok=True)
    csr = graph.csr()
    indptr = _create(path, INDPTR_FILE, graph.n + 1)
    if graph.n:
        indptr[:] = csr.indptr
    indices = _create(path, INDICES_FILE, 2 * graph.m)
    if graph.m:
        indices[:] = csr.indices
    sharded = finalize_shards(
        path, graph.n, graph.m, indptr, indices, shards=shards,
        provenance=provenance or {"generator": "static"},
    )
    release_pages(indptr)
    release_pages(indices)
    return sharded


# -- the disk-cached front door -------------------------------------------------------


def _cache_dir_for(spec, shards):
    payload = json.dumps(
        {"spec": spec, "shards": shards, "format": FORMAT_VERSION},
        sort_keys=True, default=str,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    family = str(spec.get("family", "regular"))
    n = int(spec.get("n", 64))
    return os.path.join(
        scratch_root(), "repro-oocore", "%s-n%d-%s" % (family, n, digest)
    )


def ensure_sharded(spec, shards=None, cache=True):
    """A :class:`ShardedCSRGraph` for a job-runner graph spec dict.

    Families with a streaming writer (``regular``, ``gnp``) are emitted
    straight to shards; every other family is built in memory once and
    converted.  Results are cached on disk keyed by the spec (generation is
    deterministic), so sweeps reuse the shard files across jobs and even
    across processes.
    """
    _require_numpy()
    spec = dict(spec)
    directory = _cache_dir_for(spec, shards)
    if cache and os.path.exists(os.path.join(directory, META_FILE)):
        try:
            return ShardedCSRGraph.open(directory)
        except (ValueError, OSError, KeyError):
            pass  # stale/corrupt cache entry: rebuild below
    family = spec.get("family", "regular")
    n = int(spec.get("n", 64))
    seed = spec.get("seed", 1)
    os.makedirs(directory, exist_ok=True)
    if family == "regular":
        return write_random_regular(
            directory, n, int(spec.get("degree", 6)), seed, shards=shards
        )
    if family == "gnp":
        return write_gnp(
            directory, n, float(spec.get("prob", 0.1)), seed, shards=shards
        )
    from repro.parallel.jobs import build_graph

    return shard_static_graph(
        build_graph(spec), directory, shards=shards, provenance={"spec": spec}
    )
