"""Memory-mapped CSR shards: the on-disk graph format of the out-of-core tier.

A sharded graph is a directory::

    meta.json      n, m, max_degree, format version, shard table, provenance
    indptr.i64     int64[n + 1]   CSR row pointers (global)
    indices.i64    int64[2 m]     CSR neighbor ids (global vertex ids)
    lindices.i64   int64[2 m]     the same slots with *localized* ids
    halo.i64       int64[H]       per-shard halo vertex ids, concatenated
    colors.i64     int64[n]       the output color plane

Vertices are partitioned into contiguous ranges ``[lo, hi)`` balanced by
adjacency-slot count (:func:`partition_ranges`), so every shard owns about
the same number of CSR slots regardless of degree skew.  For shard ``i``
with ``k = hi - lo`` owned vertices and halo ``h`` (the sorted unique
out-of-range neighbors of its rows), slot ``s`` of ``lindices`` holds::

    g - lo                      when lo <= g < hi   (an owned neighbor)
    k + rank of g in the halo   otherwise           (a boundary neighbor)

which makes ``indices[indptr[lo]:indptr[hi]]`` relabeled ``lindices`` a
self-contained local CSR over ``k + h`` vertices (halo rows get degree 0):
the existing batch kernels run on it unchanged, and the *only* cross-shard
data a round needs is the ``h``-entry halo color vector — the boundary
exchange the partition-aware round loop meters.

Everything here is plain NumPy + ``numpy.memmap``; the module raises
:class:`RuntimeError` without NumPy (the out-of-core tier has no scalar
fallback — it exists purely to scale the batch kernels past RAM).
"""

import json
import mmap
import os
import tempfile

from repro.runtime.csr import CSRAdjacency, numpy_or_none

__all__ = [
    "FORMAT_VERSION",
    "MemoryBudgetError",
    "PlaneStore",
    "ShardLocal",
    "ShardedCSRGraph",
    "default_shards",
    "memory_budget",
    "parse_bytes",
    "partition_ranges",
    "peak_rss_bytes",
    "release_pages",
    "scratch_root",
]

FORMAT_VERSION = 1

META_FILE = "meta.json"
INDPTR_FILE = "indptr.i64"
INDICES_FILE = "indices.i64"
LINDICES_FILE = "lindices.i64"
HALO_FILE = "halo.i64"
COLORS_FILE = "colors.i64"

SHARDS_ENV = "REPRO_OOCORE_SHARDS"
BUDGET_ENV = "REPRO_OOCORE_BUDGET"
DIR_ENV = "REPRO_OOCORE_DIR"

#: Target adjacency bytes per shard when the caller does not pick a count.
_SHARD_TARGET_BYTES = 256 << 20
_MAX_DEFAULT_SHARDS = 64


class MemoryBudgetError(RuntimeError):
    """The planned resident footprint exceeds ``REPRO_OOCORE_BUDGET``."""


def _require_numpy():
    np = numpy_or_none()
    if np is None:
        raise RuntimeError(
            "the out-of-core tier needs NumPy; install it with "
            "`pip install repro[fast]` (or unset REPRO_DISABLE_NUMPY)"
        )
    return np


def parse_bytes(text):
    """Parse a byte count: plain int, or with a K/M/G/T suffix (``\"2G\"``)."""
    if isinstance(text, (int, float)):
        return int(text)
    text = str(text).strip()
    scale = 1
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}
    if text and text[-1].upper() in suffixes:
        scale = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        return int(float(text) * scale)
    except ValueError:
        raise ValueError("unparseable byte count %r" % text)


def memory_budget():
    """The resident-byte budget from ``REPRO_OOCORE_BUDGET``, or None."""
    raw = os.environ.get(BUDGET_ENV)
    if not raw:
        return None
    return parse_bytes(raw)


def default_shards(n, m):
    """Shard count: ``REPRO_OOCORE_SHARDS`` or a slot-volume heuristic."""
    raw = os.environ.get(SHARDS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    # indices + lindices are the per-shard streaming cost: 16 bytes a slot.
    by_volume = (16 * 2 * m + _SHARD_TARGET_BYTES - 1) // _SHARD_TARGET_BYTES
    return int(max(1, min(_MAX_DEFAULT_SHARDS, by_volume)))


def scratch_root():
    """Directory for sharded graphs and state planes (``REPRO_OOCORE_DIR``)."""
    root = os.environ.get(DIR_ENV)
    if root:
        os.makedirs(root, exist_ok=True)
        return root
    return tempfile.gettempdir()


def peak_rss_bytes():
    """This process's peak resident set size in bytes (VmHWM), or None."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return None


def release_pages(array):
    """Flush a memmap's dirty pages and drop its resident pages.

    ``flush()`` (msync) must come first: MADV_DONTNEED on dirty MAP_SHARED
    pages would otherwise let the kernel discard unwritten data on some
    filesystems.  Silently a no-op for non-memmap arrays and platforms
    without madvise.
    """
    base = getattr(array, "_mmap", None)
    if base is None:
        return
    try:
        array.flush()
        base.madvise(mmap.MADV_DONTNEED)
    except (AttributeError, OSError, ValueError):
        pass


def partition_ranges(np, indptr, n, shards):
    """Contiguous vertex ranges balanced by adjacency-slot count.

    Cuts the slot axis into ``shards`` equal targets and maps each target
    back to a vertex boundary with ``searchsorted`` on ``indptr``; empty
    ranges are dropped, so the result may hold fewer than ``shards`` entries
    (tiny graphs, isolated-vertex runs).
    """
    if n <= 0:
        return [(0, 0)]
    shards = max(1, min(int(shards), n))
    if shards == 1:
        return [(0, n)]
    total = int(indptr[n])
    targets = np.array(
        [(total * i) // shards for i in range(1, shards)], dtype=np.int64
    )
    cuts = np.searchsorted(np.asarray(indptr), targets, side="left")
    bounds = [0] + sorted(int(c) for c in np.clip(cuts, 0, n)) + [n]
    return [(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]


class ShardLocal:
    """One shard's self-contained local CSR plus its halo table.

    ``csr()`` returns a :class:`~repro.runtime.csr.CSRAdjacency` over
    ``k + h`` local vertices: rows ``0..k-1`` are the owned range (global
    ``lo..hi-1``), rows ``k..k+h-1`` the halo with degree 0.  The batch
    kernels run on it unchanged; only ``bytes_read`` worth of shard files
    were streamed to build it.
    """

    __slots__ = (
        "shard_id", "lo", "hi", "k", "halo", "indptr_local", "lindices",
        "bytes_read", "_csr", "_graph", "_start", "_end", "_global_indices",
    )

    def __init__(self, graph, shard_id, lo, hi, halo, indptr_local, lindices,
                 start, end, bytes_read):
        self.shard_id = shard_id
        self.lo = lo
        self.hi = hi
        self.k = hi - lo
        self.halo = halo
        self.indptr_local = indptr_local
        self.lindices = lindices
        self.bytes_read = bytes_read
        self._csr = None
        self._graph = graph
        self._start = start
        self._end = end
        self._global_indices = None

    @property
    def n_local(self):
        """Rows of the local CSR: owned vertices plus halo slots."""
        return self.k + self.halo.shape[0]

    def csr(self):
        """The local CSR view (memoized; kernels never see global ids)."""
        if self._csr is None:
            self._csr = CSRAdjacency.from_arrays(
                self.n_local, self.indptr_local, self.lindices
            )
        return self._csr

    def global_indices(self):
        """The shard's slots with *global* neighbor ids (lazy extra read).

        Needed only for globally-ordered edge semantics — conflict counts,
        properness checks, the greedy orientation — never by the round
        kernels themselves.
        """
        if self._global_indices is None:
            np = _require_numpy()
            mm = self._graph._indices_memmap()
            self._global_indices = np.array(mm[self._start:self._end])
            self.bytes_read += self._global_indices.nbytes
        return self._global_indices

    def owner_globals(self):
        """Per-slot owning vertex as a *global* id (owned rows only)."""
        return self.csr().rows[: self.lindices.shape[0]] + self.lo


class ShardedCSRGraph:
    """A directory of memory-mapped CSR shards, query-compatible enough to
    stand in for :class:`~repro.runtime.graph.StaticGraph` where the
    out-of-core engines need it (``n``, ``m``, ``max_degree``, ``ids``,
    ``degree``, ``neighbors``).

    Open an existing directory with :meth:`open`; build one with the
    streaming writers in :mod:`repro.oocore.writers`.
    """

    def __init__(self, path, meta):
        self.path = os.path.abspath(path)
        self.meta = meta
        self.n = int(meta["n"])
        self.m = int(meta["m"])
        self.max_degree = int(meta["max_degree"])
        self.ranges = [(int(a), int(b)) for a, b in meta["ranges"]]
        self.halo_offsets = [int(x) for x in meta["halo_offsets"]]
        self.ids = range(self.n)
        self._indptr = None
        self._indices = None
        self._lindices = None
        self._halo = None

    @classmethod
    def open(cls, path):
        """Open a shard directory written by :mod:`repro.oocore.writers`."""
        with open(os.path.join(path, META_FILE)) as handle:
            meta = json.load(handle)
        if meta.get("format") != FORMAT_VERSION:
            raise ValueError(
                "shard directory %s has format %r, expected %r"
                % (path, meta.get("format"), FORMAT_VERSION)
            )
        return cls(path, meta)

    # -- file handles -----------------------------------------------------------

    def _open(self, name, shape, mode="r"):
        np = _require_numpy()
        if shape[0] == 0:
            return np.zeros(shape, dtype=np.int64)
        return np.memmap(
            os.path.join(self.path, name), dtype=np.int64, mode=mode, shape=shape
        )

    def _indptr_memmap(self):
        if self._indptr is None:
            self._indptr = self._open(INDPTR_FILE, (self.n + 1,))
        return self._indptr

    def _indices_memmap(self):
        if self._indices is None:
            self._indices = self._open(INDICES_FILE, (2 * self.m,))
        return self._indices

    def _lindices_memmap(self):
        if self._lindices is None:
            self._lindices = self._open(LINDICES_FILE, (2 * self.m,))
        return self._lindices

    def _halo_memmap(self):
        if self._halo is None:
            self._halo = self._open(HALO_FILE, (self.halo_offsets[-1],))
        return self._halo

    def colors_plane(self, mode="r+"):
        """The ``int64[n]`` output color plane as a writable memmap."""
        return self._open(COLORS_FILE, (self.n,), mode=mode)

    def release_resident(self):
        """Drop the graph memmaps' resident pages (budget discipline).

        A full round sweeps every shard, so by round's end the whole
        ``indices``/``lindices`` files are faulted in — ~``16 * 2m`` bytes
        of RSS that the kernels already copied out of.  Dropping them is
        always safe (``MAP_SHARED`` pages re-fault from the page cache or
        disk) and keeps the resident set at one shard's working set.
        """
        for array in (self._indptr, self._indices, self._lindices, self._halo):
            if array is not None and getattr(array, "_mmap", None) is not None:
                release_pages(array)

    # -- shard access -----------------------------------------------------------

    @property
    def shards(self):
        """The number of contiguous vertex-range shards on disk."""
        return len(self.ranges)

    def halo_ids(self, shard_id):
        """The sorted halo vertex ids of one shard (int64 array)."""
        np = _require_numpy()
        a, b = self.halo_offsets[shard_id], self.halo_offsets[shard_id + 1]
        return np.array(self._halo_memmap()[a:b])

    def local(self, shard_id):
        """Stream one shard's local CSR off disk as a :class:`ShardLocal`."""
        np = _require_numpy()
        lo, hi = self.ranges[shard_id]
        indptr = np.array(self._indptr_memmap()[lo:hi + 1])
        start, end = int(indptr[0]), int(indptr[-1])
        lindices = np.array(self._lindices_memmap()[start:end])
        halo = self.halo_ids(shard_id)
        k = hi - lo
        h = halo.shape[0]
        indptr_local = np.empty(k + h + 1, dtype=np.int64)
        indptr_local[: k + 1] = indptr - indptr[0]
        indptr_local[k + 1:] = indptr_local[k]
        bytes_read = indptr.nbytes + lindices.nbytes + halo.nbytes
        return ShardLocal(
            self, shard_id, lo, hi, halo, indptr_local, lindices,
            start, end, bytes_read,
        )

    # -- StaticGraph-ish queries ------------------------------------------------

    def vertices(self):
        """``range(n)`` — vertex ids are dense, mirroring ``StaticGraph``."""
        return range(self.n)

    def degree(self, v):
        """Degree of one vertex, read straight from the indptr memmap."""
        indptr = self._indptr_memmap()
        return int(indptr[v + 1] - indptr[v])

    def neighbors(self, v):
        """One vertex's sorted global neighbor tuple (a two-page read)."""
        indptr = self._indptr_memmap()
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        return tuple(int(x) for x in self._indices_memmap()[lo:hi])

    @property
    def edges(self):
        """Forward edges ``(u, v)`` with ``u < v``, streamed shard by shard.

        Matches ``StaticGraph.edges`` order for invariant checks; O(one
        shard) resident at a time.  Meant for analysis at test sizes — at
        out-of-core sizes iterate per shard instead.
        """
        np = _require_numpy()
        indptr_mm = self._indptr_memmap()
        indices_mm = self._indices_memmap()
        for lo, hi in self.ranges:
            if hi == lo:
                continue
            indptr = np.array(indptr_mm[lo:hi + 1])
            slots = np.array(indices_mm[int(indptr[0]):int(indptr[-1])])
            rows = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(indptr)
            )
            forward = slots > rows
            for u, v in zip(rows[forward].tolist(), slots[forward].tolist()):
                yield (u, v)

    @property
    def in_memory_nbytes(self):
        """Estimated bytes of the equivalent in-memory ``StaticGraph``
        (mirrors the job runner's cache estimate: ~112 per vertex and slot)."""
        return 112 * (self.n + 2 * self.m)

    @property
    def on_disk_nbytes(self):
        """Bytes of the shard files (CSR twice, halo, colors, indptr)."""
        return 8 * ((self.n + 1) + 2 * (2 * self.m) + self.halo_offsets[-1] + self.n)

    def total_halo(self):
        """Halo entries summed over every shard (the per-round exchange size)."""
        return self.halo_offsets[-1]

    def close(self):
        """Drop the memmap handles (files stay on disk)."""
        self._indptr = None
        self._indices = None
        self._lindices = None
        self._halo = None

    def __repr__(self):
        return "ShardedCSRGraph(n=%d, m=%d, shards=%d, path=%r)" % (
            self.n, self.m, self.shards, self.path,
        )


class PlaneStore:
    """Double-buffered per-component int64 state planes as memmap files.

    The partition round loop reads the *source* buffer and writes the
    *target*; buffers swap between rounds.  Files live under the engine's
    scratch directory and are visible to forked workers through the page
    cache (MAP_SHARED), so no per-round state ever crosses a pipe.
    """

    def __init__(self, directory, n, ncomp):
        np = _require_numpy()
        self.directory = directory
        self.n = n
        self.ncomp = ncomp
        self.paths = [
            [os.path.join(directory, "state-%d-%d.i64" % (buf, comp))
             for comp in range(ncomp)]
            for buf in (0, 1)
        ]
        os.makedirs(directory, exist_ok=True)
        self._arrays = []
        for buf in (0, 1):
            row = []
            for comp in range(ncomp):
                if n == 0:
                    row.append(np.zeros(0, dtype=np.int64))
                    continue
                row.append(np.memmap(
                    self.paths[buf][comp], dtype=np.int64, mode="w+", shape=(n,)
                ))
            self._arrays.append(row)

    def view(self, buf, comp):
        """One component array of one buffer (memmap or empty placeholder)."""
        return self._arrays[buf][comp]

    def buffer(self, buf):
        """The ``ncomp`` component arrays of one buffer."""
        return self._arrays[buf]

    def release_resident(self):
        """Drop the planes' resident pages (budget discipline, not teardown)."""
        for row in self._arrays:
            for array in row:
                release_pages(array)

    def close(self, delete=True):
        """Drop the arrays and (by default) unlink the backing files."""
        self._arrays = []
        if delete:
            for row in self.paths:
                for path in row:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
