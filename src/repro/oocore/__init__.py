"""Out-of-core execution tier: memory-mapped CSR shards on one box.

The public surface:

* :class:`~repro.oocore.store.ShardedCSRGraph` — the on-disk shard format;
* :mod:`repro.oocore.writers` — streaming writers (``write_gnp``,
  ``write_random_regular``, ``shard_static_graph``, ``ensure_sharded``)
  that emit shards bit-identical to the in-memory generators;
* :class:`~repro.oocore.engine.OocoreColoringEngine` — the
  ``backend="oocore"`` engine (partition-aware rounds, halo exchange);
* :func:`~repro.oocore.engine.oocore_greedy` — sharded first-fit greedy.

See DESIGN.md §9 for the shard layout and the halo-exchange protocol.
"""

from repro.oocore.engine import (
    OocoreColoringEngine,
    OocoreRunResult,
    oocore_greedy,
)
from repro.oocore.store import (
    BUDGET_ENV,
    DIR_ENV,
    SHARDS_ENV,
    MemoryBudgetError,
    ShardedCSRGraph,
    memory_budget,
    parse_bytes,
    peak_rss_bytes,
    scratch_root,
)
from repro.oocore.writers import (
    ensure_sharded,
    shard_static_graph,
    write_gnp,
    write_random_regular,
)

__all__ = [
    "BUDGET_ENV",
    "DIR_ENV",
    "SHARDS_ENV",
    "MemoryBudgetError",
    "OocoreColoringEngine",
    "OocoreRunResult",
    "ShardedCSRGraph",
    "ensure_sharded",
    "memory_budget",
    "oocore_greedy",
    "parse_bytes",
    "peak_rss_bytes",
    "scratch_root",
    "shard_static_graph",
    "write_gnp",
    "write_random_regular",
]
