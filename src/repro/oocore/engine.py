"""The out-of-core coloring engine: batch rounds over memory-mapped shards.

:class:`OocoreColoringEngine` executes the same synchronous rounds as
:class:`~repro.runtime.fast_engine.BatchColoringEngine` — same early exits,
same metrics rows, same exceptions — but never holds more than one shard's
working set plus the O(n) color planes resident.  Differential parity
(colors, rounds, per-round metrics) against the in-memory batch engine is
enforced by ``tests/test_oocore_engine.py`` at sizes where both fit.

Round structure per stage run:

1. encode: ``batch_encode_initial`` shard by shard into the double-buffered
   state planes (:class:`~repro.oocore.store.PlaneStore` memmap files);
2. rounds: a :class:`~repro.parallel.partition.PartitionRunner` steps every
   shard on its local CSR, exchanging only boundary (halo) colors between
   rounds; per-round ``changed``/``finalized``/``conflicts`` aggregate to
   exactly the batch engine's numbers because vertex ownership is a
   partition and forward edges are counted at their smaller endpoint;
3. decode: ``batch_decode_final`` shard by shard (ascending, so the first
   out-of-palette vertex matches the batch engine's error) into both the
   persistent ``colors.i64`` plane and the result array.

The engine refuses stages without the batch protocol (there is no scalar
fallback out of core) and ``record_history`` (O(rounds * n) by definition).

Also here: :func:`oocore_greedy`, sequential first-fit executed shard by
shard with the wave-parallel kernel — bit-identical to
:func:`repro.baselines.greedy.greedy_coloring` in the default order.
"""

import shutil
import tempfile
import time

from repro.errors import ImproperColoringError, PaletteOverflowError
from repro.obs import core as obs
from repro.oocore.store import (
    MemoryBudgetError,
    PlaneStore,
    ShardedCSRGraph,
    memory_budget,
    peak_rss_bytes,
    release_pages,
    scratch_root,
)
from repro.runtime.algorithm import NetworkInfo
from repro.runtime.csr import numpy_or_none
from repro.runtime.engine import RunResult, Visibility
from repro.runtime.fast_engine import BatchColoringEngine, batch_supported
from repro.runtime.metrics import MetricsLog, RoundMetrics

__all__ = ["OocoreColoringEngine", "OocoreRunResult", "oocore_greedy"]

#: Above this many vertices the engine stops pinning the full final state in
#: RAM, and ``result.colors`` (scalar tuples) becomes unavailable — the
#: decoded int64 array is the product at scale.
_SCALAR_STATE_LIMIT = 1 << 22


class OocoreRunResult(RunResult):
    """A :class:`RunResult` that materializes its Python views lazily.

    ``int_colors_array`` (the decoded int64 array) is the primary artifact;
    ``int_colors`` and ``colors`` are derived on first access so a
    10^7-vertex run does not pay for Python lists it never reads.
    """

    def __init__(self, stage, final_state, decoded, rounds_used, metrics):
        self._stage = stage
        self._final_state = final_state
        self.rounds_used = rounds_used
        self.metrics = metrics
        self.history = None
        self.int_colors_array = decoded
        self._num_colors = None
        self._int_colors = None
        self._colors = None

    @property
    def int_colors(self):
        """The final coloring as a plain-int list (memoized from the plane)."""
        if self._int_colors is None:
            self._int_colors = self.int_colors_array.tolist()
        return self._int_colors

    @property
    def colors(self):
        """The final scalar color tuples, matching the in-memory engines.

        Only retained at test sizes: above ``_SCALAR_STATE_LIMIT`` vertices
        the decoded state is dropped and this raises — use
        :attr:`int_colors_array` at out-of-core scale.
        """
        if self._colors is None:
            if self._final_state is None:
                raise RuntimeError(
                    "scalar color tuples are not retained above %d vertices; "
                    "use result.int_colors_array" % _SCALAR_STATE_LIMIT
                )
            self._colors = BatchColoringEngine._to_scalar(
                self._stage, self._final_state
            )
        return self._colors

    @property
    def num_colors(self):
        if self._num_colors is None:
            np = numpy_or_none()
            self._num_colors = int(np.unique(self.int_colors_array).shape[0])
        return self._num_colors


class OocoreColoringEngine:
    """Drop-in engine (``backend=\"oocore\"``) over a sharded graph.

    Accepts a :class:`~repro.oocore.store.ShardedCSRGraph` directly, or any
    CSR-bearing graph — which is converted into a scratch shard directory
    owned (and deleted) by the engine.

    Parameters mirror the other engines where they make sense;
    ``record_history`` is rejected, scalar-only stages raise.  ``workers``
    picks the fan-out width (default: inline), ``shards`` only applies when
    the engine has to convert an in-memory graph.
    """

    def __init__(
        self,
        graph,
        visibility=Visibility.LOCAL,
        check_proper_each_round=False,
        record_history=False,
        shards=None,
        workers=None,
        scratch=None,
    ):
        np = numpy_or_none()
        if np is None:
            raise RuntimeError(
                "backend='oocore' needs NumPy; install it with "
                "`pip install repro[fast]`"
            )
        if record_history:
            raise ValueError(
                "record_history is not supported by the oocore engine "
                "(it is O(rounds * n) resident by definition)"
            )
        self._np = np
        self._owned_dir = None
        if not isinstance(graph, ShardedCSRGraph):
            from repro.oocore.writers import shard_static_graph

            base = scratch or scratch_root()
            self._owned_dir = tempfile.mkdtemp(prefix="repro-oocore-", dir=base)
            graph = shard_static_graph(graph, self._owned_dir, shards=shards)
        self.graph = graph
        self.visibility = visibility
        self.check_proper_each_round = check_proper_each_round
        self.record_history = False
        self.workers = workers
        self._scratch_base = scratch or scratch_root()

    def __del__(self):
        # getattr: __init__ may have raised before _owned_dir existed.
        owned = getattr(self, "_owned_dir", None)
        if owned is not None:
            shutil.rmtree(owned, ignore_errors=True)

    # -- budget accounting ------------------------------------------------------

    def _max_shard_extents(self):
        np = self._np
        graph = self.graph
        indptr = graph._indptr_memmap()
        max_k = max_slots = 0
        for lo, hi in graph.ranges:
            max_k = max(max_k, hi - lo)
            max_slots = max(max_slots, int(indptr[hi]) - int(indptr[lo]))
        return max_k, max_slots

    def _enforce_budget(self, ncomp, budget):
        """Planned resident bytes vs the configured budget (raise early).

        Counted: the initial/decoded O(n) arrays, one shard's local CSR and
        double state (old + new, owned + halo), and the halo planes.  The
        state planes themselves are memmaps whose pages are dropped after
        every shard task, so only one shard's window is charged.
        """
        graph = self.graph
        max_k, max_slots = self._max_shard_extents()
        max_h = 0
        for i in range(graph.shards):
            max_h = max(
                max_h, graph.halo_offsets[i + 1] - graph.halo_offsets[i]
            )
        planned = 8 * (
            2 * graph.n
            + 6 * max_slots
            + 2 * ncomp * (max_k + max_h)
            + 2 * ncomp * max_k
            + ncomp * graph.total_halo()
        )
        if planned > budget:
            raise MemoryBudgetError(
                "planned resident footprint %d bytes exceeds "
                "REPRO_OOCORE_BUDGET=%d (n=%d, shards=%d, ncomp=%d); "
                "raise the budget or the shard count"
                % (planned, budget, graph.n, graph.shards, ncomp)
            )
        return planned

    # -- the run loop -----------------------------------------------------------

    def run(self, stage, initial_coloring, in_palette_size=None,
            max_rounds=None, configure=True):
        """Execute ``stage``; contract and outputs as the batch engine."""
        with obs.active().span(
            "engine.run", stage=getattr(stage, "name", "stage"), backend="oocore"
        ):
            return self._run_impl(
                stage, initial_coloring, in_palette_size, max_rounds, configure
            )

    def _run_impl(self, stage, initial_coloring, in_palette_size,
                  max_rounds, configure):
        np = self._np
        graph = self.graph
        if not batch_supported(stage):
            raise RuntimeError(
                "stage %s has no batch kernel; the oocore engine requires "
                "the batch protocol" % getattr(stage, "name", stage)
            )
        if len(initial_coloring) != graph.n:
            raise ValueError("initial coloring must assign a color to every vertex")
        initial = np.asarray(initial_coloring, dtype=np.int64)
        if in_palette_size is None:
            in_palette_size = (int(initial.max()) + 1) if graph.n else 1
        if configure:
            stage.configure(NetworkInfo(graph.n, graph.max_degree, in_palette_size))

        budget = memory_budget()
        tel = obs.active()
        recording = tel.enabled
        run_start = time.perf_counter() if recording else 0.0
        round_rows = [] if recording else None
        profiler = None
        sampling = False
        if recording:
            # REPRO_PROFILE=1 turns the single end-of-run VmHWM reading into
            # a real memory timeline: RSS/CPU samples plus shard-residency
            # gauges every REPRO_PROFILE_INTERVAL seconds.
            from repro.obs import flight

            profiler = flight.maybe_profiler(tel)

        scratch = tempfile.mkdtemp(prefix="repro-oocore-planes-", dir=self._scratch_base)
        planes = None
        runner = None
        io_read = io_written = halo_bytes_total = 0
        try:
            # Encode shard by shard; the first shard reveals the component
            # count so the planes can be sized.
            planes = None
            all_final = True
            for lo, hi in graph.ranges:
                if hi == lo:
                    continue
                state = stage.batch_encode_initial(initial[lo:hi])
                if planes is None:
                    planes = PlaneStore(scratch, graph.n, len(state))
                    if budget is not None:
                        self._enforce_budget(len(state), budget)
                for comp, column in enumerate(state):
                    planes.view(0, comp)[lo:hi] = column
                    io_written += column.nbytes
                all_final = all_final and bool(stage.batch_is_final(state).all())
            if planes is None:  # empty graph
                state = stage.batch_encode_initial(initial)
                planes = PlaneStore(scratch, graph.n, len(state))
            planes.release_resident()

            from repro.parallel.partition import PartitionRunner

            cache_bytes = (budget // 4) if budget is not None else (256 << 20)
            runner = PartitionRunner(
                graph, planes, stage, self.visibility,
                workers=self.workers, cache_bytes=cache_bytes,
                release_planes=budget is not None,
            )
            if profiler is not None:
                # Shard-residency gauges ride along with every RSS sample:
                # how much plane/halo state the round loop keeps hot.
                from repro.obs import flight

                ncomp = planes.ncomp

                def _residency():
                    return {
                        "oocore.shards": graph.shards,
                        "oocore.plane_bytes": 16 * graph.n * ncomp,
                        "oocore.halo_slots": runner._halo_slots,
                        "oocore.cache_bytes": cache_bytes,
                    }

                flight.register_sampler("oocore", _residency)
                sampling = True

            metrics = MetricsLog()
            if self.check_proper_each_round and stage.maintains_proper:
                self._assert_proper(stage, planes, 0, -1)

            bound = stage.rounds_bound if max_rounds is None else max_rounds
            rounds_used = 0
            src = 0
            for round_index in range(bound):
                if all_final:
                    break
                if recording:
                    round_start = time.perf_counter()
                agg = runner.run_round(
                    round_index, src, want_conflicts=recording
                )
                changed = agg["changed"]
                messages = 2 * graph.m
                bits = messages * stage.message_bits(round_index)
                metrics.record(RoundMetrics(round_index, messages, bits, changed))
                src = 1 - src
                rounds_used += 1
                all_final = agg["all_final"]
                io_read += agg["io_read"]
                io_written += agg["io_written"]
                halo_bytes_total += agg["halo_bytes"]
                if recording:
                    round_rows.append({
                        "round": round_index,
                        "messages": messages,
                        "bits": bits,
                        "changed": changed,
                        "finalized": agg["finalized"],
                        "conflicts": agg["conflicts"],
                        "seconds": time.perf_counter() - round_start,
                    })
                if self.check_proper_each_round and stage.maintains_proper:
                    self._assert_proper(stage, planes, src, round_index)
                if changed == 0 and (
                    stage.uniform_step
                    or (
                        stage.uniform_after is not None
                        and round_index >= stage.uniform_after
                    )
                ):
                    # Fixed point of a round-independent rule: identical
                    # early exit to both in-memory engines.
                    break

            decoded, final_state = self._decode(stage, planes, src)
            if recording:
                self._record_run(
                    tel, stage, in_palette_size, rounds_used, metrics,
                    round_rows, time.perf_counter() - run_start,
                    io_read, io_written, halo_bytes_total,
                )
            result = OocoreRunResult(stage, final_state, decoded, rounds_used, metrics)
            return result
        finally:
            if profiler is not None:
                if sampling:
                    from repro.obs import flight

                    flight.unregister_sampler("oocore")
                profiler.stop()
            if runner is not None:
                runner.close()
            if planes is not None:
                planes.close()
            shutil.rmtree(scratch, ignore_errors=True)

    def _decode(self, stage, planes, src):
        """Shard-by-shard decode into the colors plane and the result array.

        Ascending shard order makes the first out-of-palette vertex global-
        index-identical to the batch engine's ``PaletteOverflowError``.
        """
        np = self._np
        graph = self.graph
        decoded = np.empty(graph.n, dtype=np.int64)
        out = stage.out_palette_size
        colors_plane = graph.colors_plane() if graph.n else None
        for lo, hi in graph.ranges:
            if hi == lo:
                continue
            state = tuple(
                np.array(planes.view(src, comp)[lo:hi])
                for comp in range(planes.ncomp)
            )
            part = stage.batch_decode_final(state)
            bad = (part < 0) | (part >= out)
            if bool(bad.any()):
                i = int(np.argmax(bad))
                raise PaletteOverflowError(
                    "vertex %d got color %r outside palette of size %d (stage %s)"
                    % (lo + i, int(part[i]), out, stage.name)
                )
            decoded[lo:hi] = part
            colors_plane[lo:hi] = part
        if colors_plane is not None:
            release_pages(colors_plane)
        graph.release_resident()
        # Lazy scalar views (``result.colors``) need the full final state;
        # pin it only while that is cheap.  At out-of-core sizes the decoded
        # array is the product and scalar tuples stay unavailable.
        if graph.n <= _SCALAR_STATE_LIMIT:
            final_state = tuple(
                np.array(planes.view(src, comp)[: graph.n])
                for comp in range(planes.ncomp)
            )
        else:
            final_state = None
        return decoded, final_state

    def _assert_proper(self, stage, planes, src, round_index):
        """Mirror of the batch engine's per-round properness assertion."""
        np = self._np
        graph = self.graph
        for shard_id in range(graph.shards):
            local = graph.local(shard_id)
            if local.lindices.shape[0] == 0:
                continue
            state = tuple(
                np.concatenate([
                    np.array(planes.view(src, comp)[local.lo:local.hi]),
                    np.asarray(planes.view(src, comp))[local.halo],
                ])
                for comp in range(planes.ncomp)
            )
            fwd = local.global_indices() > local.owner_globals()
            if not bool(fwd.any()):
                continue
            rows = local.csr().rows[: local.lindices.shape[0]][fwd]
            nbrs = local.lindices[fwd]
            equal = np.ones(rows.shape[0], dtype=bool)
            for comp in state:
                equal &= comp[nbrs] == comp[rows]
            if bool(equal.any()):
                i = int(np.argmax(equal))
                u = int(rows[i]) + local.lo
                v = int(local.global_indices()[np.nonzero(fwd)[0][i]])
                color_state = tuple(
                    np.array([comp[int(rows[i])]]) for comp in state
                )
                color = BatchColoringEngine._to_scalar(stage, color_state)[0]
                raise ImproperColoringError(round_index, (u, v), color)

    def _record_run(self, tel, stage, in_palette, rounds_used, metrics,
                    round_rows, wall_seconds, io_read, io_written, halo_bytes):
        graph = self.graph
        tel.event(
            "engine.run",
            stage=stage.name,
            backend="oocore",
            n=graph.n,
            m=graph.m,
            delta=graph.max_degree,
            in_palette=in_palette,
            out_palette=stage.out_palette_size,
            rounds_used=rounds_used,
            total_messages=metrics.total_messages,
            total_bits=metrics.total_bits,
            rounds=round_rows,
            wall_seconds=wall_seconds,
        )
        tel.counter("engine.runs", stage=stage.name)
        tel.counter("engine.rounds", rounds_used, stage=stage.name)
        tel.histogram("engine.run_seconds", wall_seconds, stage=stage.name)
        tel.counter("oocore.shard_io.bytes_read", io_read, stage=stage.name)
        tel.counter("oocore.shard_io.bytes_written", io_written, stage=stage.name)
        tel.counter("oocore.halo.bytes", halo_bytes, stage=stage.name)
        rss = peak_rss_bytes()
        if rss is not None:
            tel.gauge("oocore.peak_rss_bytes", rss)


def oocore_greedy(graph, order=None):
    """Sequential first-fit greedy over shards, bit-identical to the oracle.

    Shards are processed in ascending vertex order, so every cross-shard
    *earlier* neighbor is already final when a shard starts; its color is
    read from the persistent color plane and seeds the occupancy exactly as
    an in-shard earlier neighbor would.  Within a shard the standard
    wave-parallel argument applies.  Only the natural order (``order=None``)
    is supported out of core.

    With telemetry live and ``REPRO_PROFILE=1`` set, a sampling profiler
    records the RSS/CPU timeline of the sweep (``profile.sample`` events).
    """
    tel = obs.active()
    profiler = None
    if tel.enabled:
        from repro.obs import flight

        profiler = flight.maybe_profiler(tel)
    try:
        return _oocore_greedy_impl(graph, order, tel)
    finally:
        if profiler is not None:
            profiler.stop()


def _oocore_greedy_impl(graph, order, tel):
    np = numpy_or_none()
    if np is None:
        raise RuntimeError("oocore greedy needs NumPy")
    if order is not None:
        raise ValueError(
            "custom orders are not supported by the out-of-core greedy; "
            "use the in-memory backend"
        )
    if not isinstance(graph, ShardedCSRGraph):
        raise TypeError("oocore_greedy needs a ShardedCSRGraph")
    io_read = io_written = halo_bytes = 0
    palette = graph.max_degree + 1
    plane = graph.colors_plane() if graph.n else None
    for shard_id in range(graph.shards):
        local = graph.local(shard_id)
        k = local.k
        if k == 0:
            continue
        io_read += local.bytes_read
        h = local.halo.shape[0]
        sl_global = local.global_indices()
        io_read += sl_global.nbytes
        owner_global = local.owner_globals()
        earlier = sl_global < owner_global
        rows = local.csr().rows[: local.lindices.shape[0]]
        colors_local = np.full(k + h, -1, dtype=np.int64)
        if h:
            colors_local[k:] = plane[local.halo]
            halo_bytes += 8 * h
        # Occupancy half: every earlier neighbor (owned or halo).  Countdown
        # half: later in-shard neighbors only — later out-of-shard vertices
        # belong to later shards and are not gated here.
        e_rows = rows[earlier]
        e_nbrs = local.lindices[earlier]
        e_counts = np.bincount(e_rows, minlength=k)
        e_indptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(e_counts, out=e_indptr[1:])
        e_order = np.argsort(e_rows, kind="stable")
        e_indices = e_nbrs[e_order]
        later_in = (~earlier) & (sl_global < local.hi)
        l_rows = rows[later_in]
        l_counts = np.bincount(l_rows, minlength=k)
        l_indptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(l_counts, out=l_indptr[1:])
        l_order = np.argsort(l_rows, kind="stable")
        l_indices = local.lindices[later_in][l_order]
        # In-shard earlier neighbors gate readiness (halo ones are colored).
        indeg = np.bincount(
            rows[earlier & (sl_global >= local.lo)], minlength=k
        )

        def gather(indptr, indices, wave, repeats):
            starts = indptr[wave]
            lens = indptr[wave + 1] - starts
            total = int(lens.sum())
            if total == 0:
                empty = np.zeros(0, dtype=np.int64)
                return empty, empty
            shift = np.cumsum(lens) - lens
            slot = np.repeat(starts - shift, lens) + np.arange(total, dtype=np.int64)
            spread = np.repeat(repeats, lens) if repeats is not None else None
            return indices[slot], spread

        wave = np.nonzero(indeg == 0)[0]
        indeg[wave] = -1
        remaining = k
        while wave.size:
            width = wave.size
            taken, key_base = gather(
                e_indptr, e_indices, wave,
                np.arange(width, dtype=np.int64) * palette,
            )
            occupancy = np.bincount(
                key_base + colors_local[taken], minlength=width * palette
            ) if taken.size else np.zeros(width * palette, dtype=np.int64)
            colors_local[wave] = (
                occupancy.reshape(width, palette) == 0
            ).argmax(axis=1)
            remaining -= width
            if remaining == 0:
                break
            later, _ = gather(l_indptr, l_indices, wave, None)
            if later.size:
                indeg -= np.bincount(later, minlength=k)
            wave = np.nonzero(indeg == 0)[0]
            indeg[wave] = -1
        plane[local.lo:local.hi] = colors_local[:k]
        io_written += 8 * k
        release_pages(plane)
        graph.release_resident()
    if tel.enabled:
        tel.counter("oocore.shard_io.bytes_read", io_read, stage="greedy")
        tel.counter("oocore.shard_io.bytes_written", io_written, stage="greedy")
        tel.counter("oocore.halo.bytes", halo_bytes, stage="greedy")
        rss = peak_rss_bytes()
        if rss is not None:
            tel.gauge("oocore.peak_rss_bytes", rss)
    if graph.n == 0:
        return []
    return np.array(plane).tolist()
