"""The experiment daemon: executor loop + stdlib HTTP front end.

Two halves, one process:

* :class:`ExperimentService` owns the durable pieces — a
  :class:`~repro.service.registry.RunRegistry`, a persistent
  :class:`~repro.parallel.runner.JobRunner` (the pool outlives individual
  runs), and a single executor thread draining queued runs.  One run
  executes at a time: the process-wide :mod:`repro.obs` collector is global
  state, and serial execution is what lets each run stream into its own
  telemetry file via :func:`repro.obs.route` while the runner still
  parallelizes *within* the run across its worker pool.
* the HTTP layer is stdlib ``http.server`` over TCP or a unix socket — no
  new dependencies.  Responses are the :mod:`repro.service.wire` JSON
  format; the telemetry endpoint streams chunked JSONL so ``?follow=1``
  tails an in-flight run live.

Endpoints (all under ``/v1``):

========================== ======= =====================================
``/v1/health``             GET     daemon liveness + run counts
``/v1/runs``               POST    submit a JobSpec; returns the queued record
``/v1/runs``               GET     list/filter (algorithm, n, delta, status, since, job_id, limit)
``/v1/runs/<ref>``         GET     one record by run id or job-id string
``/v1/runs/<ref>/rerun``   POST    re-execute a stored spec (provenance via ``rerun_of``)
``/v1/runs/<ref>/telemetry`` GET   the run's JSONL stream (``?follow=1`` = live tail)
========================== ======= =====================================

Run lifecycle wiring: ``submit`` inserts the ``queued`` row; the runner's
``on_status`` hook (see :class:`~repro.parallel.runner.JobRunner`) marks
``running`` the moment the job is dispatched; the finished
:class:`~repro.parallel.jobs.JobOutcome` maps to ``done`` / ``failed`` /
``timeout`` via :meth:`~repro.service.registry.RunRegistry.finish`.
"""

import os
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from queue import Empty, Queue
from urllib.parse import parse_qs, urlsplit

from repro.obs.routing import route
from repro.parallel.jobs import JobSpec, algorithm_names
from repro.parallel.runner import JobRunner
from repro.service.registry import TERMINAL_STATUSES, RunRegistry
from repro.service.wire import (
    WIRE_VERSION,
    decode_body,
    encode_body,
    error_body,
    spec_from_body,
)

__all__ = ["ExperimentService", "make_server", "serve"]

#: Seconds between file polls while a chunked telemetry tail is following.
_TAIL_POLL = 0.1


class ExperimentService:
    """The long-lived experiment executor over a durable run registry.

    ``db`` is the SQLite registry path; ``telemetry_dir`` (default: a
    ``telemetry/`` directory beside the registry file) receives one JSONL
    file per run.  Runner knobs (``workers`` / ``timeout`` / ``retries`` /
    ``mode``) configure the persistent :class:`~repro.parallel.runner.JobRunner`
    every run executes on.  Call :meth:`start` to launch the executor
    thread and :meth:`close` to drain it; the class is also a context
    manager doing both.
    """

    def __init__(self, db, telemetry_dir=None, workers=None, timeout=None, retries=1, mode="auto"):
        self.registry = RunRegistry(db)
        if telemetry_dir is None:
            base = os.path.dirname(os.path.abspath(db)) if db != ":memory:" else os.getcwd()
            telemetry_dir = os.path.join(base, "telemetry")
        self.telemetry_dir = telemetry_dir
        os.makedirs(telemetry_dir, exist_ok=True)
        self.runner = JobRunner(workers=workers, timeout=timeout, retries=retries, mode=mode)
        self._queue = Queue()
        self._thread = None
        self._stop = threading.Event()
        self._started = time.time()

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Launch the executor thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._drain, name="repro-service-executor", daemon=True)
            self._thread.start()
        return self

    def close(self):
        """Stop the executor, release the pool, close the registry (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.runner.close()
        self.registry.close()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- submission --------------------------------------------------------------

    def submit(self, spec, rerun_of=None):
        """Queue one :class:`~repro.parallel.jobs.JobSpec`; returns its record.

        The row is durable before this returns — a daemon crash after
        ``submit`` leaves the run visible (``queued``) in the registry.
        """
        record = self.registry.create_run(spec, rerun_of=rerun_of)
        self._queue.put(record["id"])
        return record

    def rerun(self, ref):
        """Re-execute a stored run (by run id or job-id string) from its spec.

        The new run's spec is the *stored* dict, not a re-derivation — the
        by-value registry row is the single source of truth, which is what
        makes historical re-runs bit-identical.  Raises :class:`KeyError`
        for an unknown reference.
        """
        record = self.registry.resolve(ref)
        if record is None:
            raise KeyError("no run matching %r" % ref)
        spec = JobSpec.from_dict(record["spec"])
        return self.submit(spec, rerun_of=record["id"])

    def health(self):
        """The liveness payload: uptime, run counts, registry location."""
        return {
            "status": "ok",
            "uptime": time.time() - self._started,
            "registry": self.registry.path,
            "registry_version": self.registry.schema_version,
            "counts": self.registry.counts(),
            "algorithms": list(algorithm_names()),
            "workers": self.runner.workers,
        }

    def telemetry_path(self, record):
        """Absolute path of a run record's telemetry JSONL file."""
        filename = record["telemetry"] or ("run-%d.jsonl" % record["id"])
        return os.path.join(self.telemetry_dir, filename)

    # -- executor ----------------------------------------------------------------

    def _drain(self):
        """The executor loop: pop queued run ids, execute serially, persist."""
        while not self._stop.is_set():
            try:
                run_id = self._queue.get(timeout=0.1)
            except Empty:
                continue
            self._execute(run_id)

    def _execute(self, run_id):
        """Run one registry row end to end; every exit leaves a terminal status."""
        record = self.registry.get(run_id)
        if record is None:
            return
        try:
            spec = JobSpec.from_dict(record["spec"])
        except Exception as exc:
            self.registry.fail(run_id, type(exc).__name__, str(exc))
            return
        filename = "run-%d.jsonl" % run_id
        self.registry.mark_telemetry(run_id, filename)
        registry = self.registry
        self.runner.on_status = (
            lambda _spec, status: registry.mark_running(run_id) if status == "running" else None
        )
        try:
            with route(os.path.join(self.telemetry_dir, filename), source=spec.job_id) as tel:
                tel.event("run.started", run=run_id, job=spec.job_id, rerun_of=record["rerun_of"])
                outcome = self.runner.submit(spec)
                tel.event(
                    "run.finished",
                    run=run_id,
                    ok=outcome.ok,
                    seconds=outcome.seconds,
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                )
        except Exception as exc:
            # The runner contains job failures in outcomes; reaching here
            # means the service itself broke — never strand the row.
            self.registry.fail(run_id, type(exc).__name__, str(exc))
            return
        finally:
            self.runner.on_status = None
        self.registry.finish(run_id, outcome)


class _UnixHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to a unix domain socket path.

    ``HTTPServer.server_bind`` assumes an ``(host, port)`` address, so this
    binds through plain ``TCPServer`` and stamps placeholder name/port; a
    stale socket file from a dead daemon is unlinked before binding.
    """

    address_family = socket.AF_UNIX

    def server_bind(self):
        """Bind the unix path, replacing a stale socket file if present."""
        try:
            os.unlink(self.server_address)
        except OSError:
            pass
        socketserver.TCPServer.server_bind(self)
        self.server_name = "localhost"
        self.server_port = 0


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1`` requests onto the server's :class:`ExperimentService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/%d" % WIRE_VERSION

    # -- plumbing ----------------------------------------------------------------

    def address_string(self):
        """Client name for logs; unix-socket peers have no host to resolve."""
        if not self.client_address or isinstance(self.client_address, (str, bytes)):
            return "unix"
        return super().address_string()

    def log_message(self, format, *args):
        """Silence per-request stderr chatter unless the server asks for it."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status, payload):
        """One complete JSON response (Content-Length framing)."""
        body = encode_body(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status, kind, message):
        """The uniform non-2xx error payload."""
        self._send_json(status, error_body(kind, message))

    def _read_body(self):
        """The request body bytes (Content-Length framed; empty when absent)."""
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # -- routing -----------------------------------------------------------------

    def do_GET(self):
        """Dispatch GET: health, run listing, single record, telemetry tail."""
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        try:
            if parts == ["v1", "health"]:
                return self._send_json(200, self.server.service.health())
            if parts == ["v1", "runs"]:
                return self._list_runs(query)
            if len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                return self._get_run(parts[2])
            if len(parts) == 4 and parts[:2] == ["v1", "runs"] and parts[3] == "telemetry":
                return self._telemetry(parts[2], query)
            return self._send_error(404, "NotFound", "no route for %s" % url.path)
        except ValueError as exc:
            return self._send_error(400, "ValueError", str(exc))

    def do_POST(self):
        """Dispatch POST: submit a spec, or re-run a stored record."""
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["v1", "runs"]:
                return self._submit()
            if len(parts) == 4 and parts[:2] == ["v1", "runs"] and parts[3] == "rerun":
                return self._rerun(parts[2])
            return self._send_error(404, "NotFound", "no route for %s" % url.path)
        except ValueError as exc:
            return self._send_error(400, "ValueError", str(exc))

    # -- endpoints ---------------------------------------------------------------

    def _submit(self):
        """``POST /v1/runs`` — validate the spec, queue it, return the record."""
        payload = decode_body(self._read_body(), kind="submit body")
        spec = spec_from_body(payload)
        record = self.server.service.submit(spec)
        self._send_json(202, record)

    def _rerun(self, ref):
        """``POST /v1/runs/<ref>/rerun`` — re-queue a stored spec by value."""
        try:
            record = self.server.service.rerun(ref)
        except KeyError:
            return self._send_error(404, "NotFound", "no run matching %r" % ref)
        self._send_json(202, record)

    def _get_run(self, ref):
        """``GET /v1/runs/<ref>`` — one record by run id or job-id string."""
        record = self.server.service.registry.resolve(ref)
        if record is None:
            return self._send_error(404, "NotFound", "no run matching %r" % ref)
        self._send_json(200, record)

    def _list_runs(self, query):
        """``GET /v1/runs`` — filtered listing, newest first."""

        def _one(name, convert=None):
            values = query.get(name)
            if not values:
                return None
            return convert(values[0]) if convert is not None else values[0]

        records = self.server.service.registry.list_runs(
            algorithm=_one("algorithm"),
            n=_one("n", int),
            delta=_one("delta", int),
            status=_one("status"),
            since=_one("since", float),
            job_id=_one("job_id"),
            limit=_one("limit", int),
        )
        self._send_json(
            200,
            {"schema_version": WIRE_VERSION, "count": len(records), "runs": records},
        )

    def _telemetry(self, ref, query):
        """``GET /v1/runs/<ref>/telemetry`` — the run's JSONL, chunked.

        Plain requests return whatever the file holds right now;
        ``?follow=1`` keeps the chunked stream open, polling the file and
        the run's status, until the run is terminal and fully drained —
        the live tail off the flight-recorder stream.
        """
        service = self.server.service
        record = service.registry.resolve(ref)
        if record is None:
            return self._send_error(404, "NotFound", "no run matching %r" % ref)
        follow = _one_flag(query, "follow")
        path = service.telemetry_path(record)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            self._stream_file(record["id"], path, follow)
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _stream_file(self, run_id, path, follow):
        """Write the file's bytes as HTTP chunks, tailing while following."""
        service = self.server.service
        offset = 0
        while True:
            data = b""
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
            if data:
                offset += len(data)
                self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
                self.wfile.flush()
            if not follow:
                return
            if not data:
                current = service.registry.get(run_id)
                if current is None or current["status"] in TERMINAL_STATUSES:
                    return
                time.sleep(_TAIL_POLL)


def _one_flag(query, name):
    """True when a query parameter is present and truthy (``1``/``true``/...)."""
    values = query.get(name)
    if not values:
        return False
    return values[0].strip().lower() not in ("", "0", "false", "no")


def make_server(service, socket_path=None, host="127.0.0.1", port=0, verbose=False):
    """An HTTP server fronting ``service``, bound but not yet serving.

    ``socket_path`` selects a unix domain socket; otherwise ``host:port``
    TCP (``port=0`` picks a free port — read it back from
    ``server.server_address``).  The caller owns the serve loop: call
    ``serve_forever()`` (often on a thread) and ``server_close()`` after.
    """
    if socket_path is not None:
        server = _UnixHTTPServer(socket_path, _Handler)
    else:
        server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service
    server.verbose = verbose
    return server


def serve(db, socket_path=None, host="127.0.0.1", port=8357, telemetry_dir=None, workers=None, timeout=None, retries=1, mode="auto", verbose=False, ready=None):
    """Run the experiment daemon until interrupted (the ``repro serve`` body).

    Builds an :class:`ExperimentService` on ``db``, fronts it with
    :func:`make_server`, and blocks in ``serve_forever``; ``ready`` (when
    given) is called once with the listening address string.  Shutdown —
    ``KeyboardInterrupt`` included — closes the pool, the registry, and
    removes a unix socket file.
    """
    service = ExperimentService(
        db,
        telemetry_dir=telemetry_dir,
        workers=workers,
        timeout=timeout,
        retries=retries,
        mode=mode,
    ).start()
    server = make_server(service, socket_path=socket_path, host=host, port=port, verbose=verbose)
    address = socket_path if socket_path is not None else "%s:%d" % server.server_address[:2]
    if ready is not None:
        ready(address)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
        if socket_path is not None:
            try:
                os.unlink(socket_path)
            except OSError:
                pass
