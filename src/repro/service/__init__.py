"""The experiment service: a long-lived daemon over a durable run registry.

The paper's experiment catalogue is a set of (algorithm, graph, parameter)
runs — exactly the shape of a job registry.  This package turns the
value-typed :class:`~repro.parallel.jobs.JobSpec` + structural
:class:`~repro.runtime.results.Result` protocol into a transport and
persistence layer:

* :mod:`repro.service.wire` — the versioned JSON wire format shared by the
  HTTP endpoints, the client, and the registry rows;
* :mod:`repro.service.registry` — the SQLite run registry: every run's
  spec, status transitions (``queued -> running -> done|failed|timeout``),
  result envelope, and telemetry-file pointer, behind ordered schema
  migrations;
* :mod:`repro.service.app` — :class:`ExperimentService` (the executor that
  drains queued runs onto a :class:`~repro.parallel.runner.JobRunner`) and
  the stdlib ``http.server`` front end (TCP or unix socket), including the
  chunked live telemetry tail;
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin Python
  client speaking the same wire format as the ``repro-coloring
  submit|runs|rerun|tail`` CLI subcommands.

Start a daemon with ``repro-coloring serve --socket svc.sock --db
registry.sqlite`` and talk to it from Python::

    from repro.api import ServiceClient

    client = ServiceClient("unix:svc.sock")
    run = client.submit({"algorithm": "cor36",
                         "graph": {"family": "regular", "n": 512, "degree": 8}},
                        wait=True)
    again = client.rerun(run["id"], wait=True)
    assert again["summary"] == run["summary"]   # by-value specs re-run bit-identically
"""

from repro.service.app import ExperimentService, serve
from repro.service.client import ServiceClient
from repro.service.registry import STATUSES, RunRegistry
from repro.service.wire import WIRE_VERSION

__all__ = [
    "ExperimentService",
    "RunRegistry",
    "STATUSES",
    "ServiceClient",
    "WIRE_VERSION",
    "serve",
]
