"""The thin Python client for the experiment daemon (stdlib only).

:class:`ServiceClient` speaks the :mod:`repro.service.wire` JSON format
over ``http.client`` — TCP or unix domain socket, selected by the address
string:

* ``"unix:svc.sock"`` (or any ``unix:<path>``) — unix socket;
* ``"localhost:8357"`` / ``"http://host:8357"`` — TCP.

Every method returns plain wire dicts (run records, listings), so the
client composes directly with :func:`~repro.parallel.jobs.JobSpec.from_dict`
and the :mod:`repro.obs` exporters.  Server-side errors surface as
:class:`ServiceError` carrying the wire error's ``kind`` and ``message``.

The CLI subcommands (``repro-coloring submit|runs|rerun|tail``) are thin
wrappers over this class; anything the CLI can do, a notebook can do::

    client = ServiceClient("unix:svc.sock")
    run = client.submit({"algorithm": "cor36",
                         "graph": {"family": "regular", "n": 256, "degree": 8}},
                        wait=True)
    for event in client.tail(run["id"]):
        print(event["type"])
"""

import http.client
import json
import socket
import time
from urllib.parse import urlencode, urlsplit

from repro.service.wire import decode_body, encode_body

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx daemon response, carrying the wire error record.

    ``status`` is the HTTP status code; ``kind`` / ``message`` mirror the
    ``error`` object of the response body.
    """

    def __init__(self, status, kind, message):
        super().__init__("%s (HTTP %d): %s" % (kind, status, message))
        self.status = status
        self.kind = kind
        self.message = message


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``HTTPConnection`` dialing a unix domain socket path."""

    def __init__(self, path, timeout=None):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = path

    def connect(self):
        """Open the AF_UNIX stream to the daemon's socket file."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServiceClient:
    """Talks to one ``repro serve`` daemon; see the module docstring.

    ``timeout`` bounds each plain request in seconds; following tails and
    ``wait=True`` polls manage their own patience.
    """

    def __init__(self, address, timeout=30.0):
        self.address = address
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def _connection(self, timeout):
        """A fresh connection to the daemon (one per request; HTTP/1.1 close)."""
        address = self.address
        if address.startswith("unix:"):
            return _UnixHTTPConnection(address[len("unix:"):], timeout=timeout)
        if "://" in address:
            parts = urlsplit(address)
            return http.client.HTTPConnection(
                parts.hostname, parts.port or 80, timeout=timeout
            )
        host, _, port = address.rpartition(":")
        return http.client.HTTPConnection(host or "127.0.0.1", int(port), timeout=timeout)

    def _request(self, method, path, body=None):
        """One request/response cycle; returns the decoded payload dict.

        Raises :class:`ServiceError` for non-2xx responses and
        :class:`ValueError` for bodies that are not valid wire JSON.
        """
        conn = self._connection(self.timeout)
        try:
            data = encode_body(body) if body is not None else None
            headers = {"Content-Type": "application/json"} if data is not None else {}
            conn.request(method, path, body=data, headers=headers)
            response = conn.getresponse()
            payload = decode_body(response.read(), kind="service response")
            if response.status >= 300:
                error = payload.get("error", {}) if isinstance(payload, dict) else {}
                raise ServiceError(
                    response.status,
                    error.get("kind", "ServiceError"),
                    error.get("message", "request failed"),
                )
            return payload
        finally:
            conn.close()

    # -- endpoints ---------------------------------------------------------------

    def health(self):
        """The daemon's liveness payload (status, counts, uptime)."""
        return self._request("GET", "/v1/health")

    def submit(self, spec, wait=False, timeout=None, poll=0.05):
        """Submit one job; returns its run record.

        ``spec`` is a ``JobSpec.to_dict`` dict (or anything with a
        ``to_dict``).  ``wait=True`` polls until the run is terminal and
        returns the finished record instead of the queued one.
        """
        if hasattr(spec, "to_dict"):
            spec = spec.to_dict()
        record = self._request("POST", "/v1/runs", body={"spec": spec})
        if wait:
            return self.wait(record["id"], timeout=timeout, poll=poll)
        return record

    def get(self, ref):
        """The run record for a run id or job-id string."""
        return self._request("GET", "/v1/runs/%s" % ref)

    def runs(self, algorithm=None, n=None, delta=None, status=None, since=None, job_id=None, limit=None):
        """Run records matching every given filter, newest first."""
        params = {
            name: value
            for name, value in (
                ("algorithm", algorithm),
                ("n", n),
                ("delta", delta),
                ("status", status),
                ("since", since),
                ("job_id", job_id),
                ("limit", limit),
            )
            if value is not None
        }
        path = "/v1/runs"
        if params:
            path += "?" + urlencode(params)
        return self._request("GET", path)["runs"]

    def rerun(self, ref, wait=False, timeout=None, poll=0.05):
        """Re-execute a stored run by id; returns the *new* run's record."""
        record = self._request("POST", "/v1/runs/%s/rerun" % ref)
        if wait:
            return self.wait(record["id"], timeout=timeout, poll=poll)
        return record

    def wait(self, ref, timeout=None, poll=0.05):
        """Poll a run until it reaches a terminal status; returns the record.

        Raises :class:`TimeoutError` when ``timeout`` seconds pass first —
        the run itself keeps going; only the wait gives up.
        """
        from repro.service.registry import TERMINAL_STATUSES

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.get(ref)
            if record["status"] in TERMINAL_STATUSES:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("run %r not terminal after %.3gs" % (ref, timeout))
            time.sleep(poll)

    def tail(self, ref, follow=False):
        """Yield the run's telemetry records (dicts) from the daemon's stream.

        ``follow=True`` holds the chunked response open and keeps yielding
        as the in-flight run records events, ending when the run reaches a
        terminal status — the programmatic form of ``repro-coloring tail -f``.
        """
        conn = self._connection(None if follow else self.timeout)
        try:
            conn.request(
                "GET",
                "/v1/runs/%s/telemetry%s" % (ref, "?follow=1" if follow else ""),
            )
            response = conn.getresponse()
            if response.status >= 300:
                payload = decode_body(response.read(), kind="service response")
                error = payload.get("error", {}) if isinstance(payload, dict) else {}
                raise ServiceError(
                    response.status,
                    error.get("kind", "ServiceError"),
                    error.get("message", "request failed"),
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
