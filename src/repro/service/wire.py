"""The service wire format: versioned JSON shared by server, client, and CLI.

Every body that crosses the HTTP boundary is JSON with a ``schema_version``
stamp (the same :data:`~repro.runtime.results.SCHEMA_VERSION` that versions
``JobSpec.to_dict`` and the ``summarize`` result envelope — the registry
rows, the wire, and the process-pool payloads are one format family).
Readers apply the tolerant-reader rule via
:func:`~repro.runtime.results.check_schema_version`: a newer producer's
extra fields are ignored, never fatal, so a 1.x client can read a 1.y
server's responses and a restarted daemon can read every stored run.

Shapes
------
run record (``GET /v1/runs/<id>``, elements of ``GET /v1/runs``)
    ``{"schema_version", "id", "job_id", "spec", "status", "created",
    "started", "finished", "seconds", "attempts", "summary", "error",
    "telemetry", "rerun_of"}`` — ``spec`` is the stored
    ``JobSpec.to_dict``, ``summary`` the ``summarize`` envelope (null until
    ``done``), ``telemetry`` the run's JSONL file name (null when the run
    recorded none).
submit body (``POST /v1/runs``)
    a ``JobSpec.to_dict`` dict, optionally wrapped as ``{"spec": {...}}``.
error body (any non-2xx)
    ``{"schema_version", "error": {"kind", "message"}}``.
"""

import json

from repro.runtime.results import SCHEMA_VERSION, check_schema_version

__all__ = [
    "WIRE_VERSION",
    "decode_body",
    "encode_body",
    "error_body",
    "spec_from_body",
]

#: Version stamp of the HTTP wire format (aliases the shared record schema).
WIRE_VERSION = SCHEMA_VERSION


def encode_body(payload):
    """Serialize one wire payload to UTF-8 JSON bytes (stamped, sorted keys).

    Sorted keys keep responses byte-deterministic for a given payload, which
    is what lets the CI smoke assert a re-run's record equals the original's
    field-for-field.
    """
    if isinstance(payload, dict):
        payload = dict(payload)
        payload.setdefault("schema_version", WIRE_VERSION)
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_body(data, kind="wire payload"):
    """Parse UTF-8 JSON bytes, applying the tolerant-reader version check.

    Raises :class:`ValueError` for unparseable bytes; a parseable dict with
    a newer ``schema_version`` warns and is returned as-is.
    """
    try:
        payload = json.loads(data.decode("utf-8") if isinstance(data, bytes) else data)
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ValueError("request body is not valid JSON") from None
    check_schema_version(payload, kind=kind)
    return payload


def error_body(kind, message):
    """The uniform error payload for non-2xx responses."""
    return {
        "schema_version": WIRE_VERSION,
        "error": {"kind": kind, "message": message},
    }


def spec_from_body(payload):
    """A validated :class:`~repro.parallel.jobs.JobSpec` from a submit body.

    Accepts a bare ``JobSpec.to_dict`` dict or the ``{"spec": {...}}``
    wrapper; rejects (``ValueError``) bodies that are not dicts or that name
    an unregistered algorithm — the submit endpoint refuses jobs that could
    only fail at execution time.
    """
    from repro.parallel.jobs import JobSpec, algorithm_names

    if not isinstance(payload, dict):
        raise ValueError("submit body must be a JSON object")
    data = payload.get("spec", payload)
    if not isinstance(data, dict):
        raise ValueError("'spec' must be a JSON object")
    spec = JobSpec.from_dict(data)
    if spec.algorithm not in algorithm_names():
        raise ValueError(
            "unknown algorithm %r (registered: %s)"
            % (spec.algorithm, ", ".join(algorithm_names()))
        )
    return spec
