"""The durable run registry: every run's spec, status, result, telemetry.

One SQLite file holds the whole experiment history.  A *run* is one
execution of one :class:`~repro.parallel.jobs.JobSpec`: the spec is stored
by value (JSON of ``to_dict``), so any historical run can be re-executed
bit-identically by ``id`` forever — the registry is the durable half of the
determinism contract (spec in, identical summary out).

Schema migrations are ordered DDL scripts gated on ``PRAGMA user_version``:
opening a registry applies exactly the migrations its file has not seen, so
a daemon upgrade never loses stored runs and an old file opens under a new
release.  Row payloads (``spec`` / ``summary`` / ``error`` JSON columns)
carry their own ``schema_version`` stamps and are read through the
tolerant-reader check, decoupling payload evolution from DDL evolution.

Status machine: ``queued -> running -> done | failed | timeout`` (plus
``queued -> failed`` for specs that cannot start).  Every transition is
also appended to the ``run_events`` table with its wall-clock timestamp, so
the full lifecycle of any run — including retries re-entering ``running``
— survives daemon restarts.

The class is thread-safe (one connection, one lock): HTTP handler threads
read while the executor thread writes.
"""

import json
import os
import sqlite3
import threading
import time

from repro.runtime.results import SCHEMA_VERSION, check_schema_version

__all__ = ["MIGRATIONS", "RunRegistry", "STATUSES"]

#: Legal run states, in lifecycle order.
STATUSES = ("queued", "running", "done", "failed", "timeout")

#: Terminal states: a run in one of these never transitions again.
TERMINAL_STATUSES = ("done", "failed", "timeout")

#: Ordered DDL migrations; ``PRAGMA user_version`` records how many have
#: been applied to a file.  Append-only — released entries never change.
MIGRATIONS = (
    # v1: the core runs table + per-transition event log.
    """
    CREATE TABLE runs (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        job_id TEXT NOT NULL,
        algorithm TEXT NOT NULL,
        family TEXT,
        n INTEGER,
        delta INTEGER,
        backend TEXT,
        seed INTEGER,
        spec TEXT NOT NULL,
        schema_version INTEGER NOT NULL,
        status TEXT NOT NULL,
        created REAL NOT NULL,
        started REAL,
        finished REAL,
        seconds REAL,
        attempts INTEGER,
        summary TEXT,
        error TEXT,
        telemetry TEXT
    );
    CREATE TABLE run_events (
        run_id INTEGER NOT NULL REFERENCES runs(id),
        status TEXT NOT NULL,
        ts REAL NOT NULL
    );
    """,
    # v2: re-run provenance + the hot list-filter indexes.
    """
    ALTER TABLE runs ADD COLUMN rerun_of INTEGER;
    CREATE INDEX idx_runs_job_id ON runs(job_id);
    CREATE INDEX idx_runs_status ON runs(status);
    CREATE INDEX idx_runs_algorithm ON runs(algorithm);
    """,
)


class RunRegistry:
    """The SQLite-backed run store (thread-safe; one file per service).

    ``path`` may be a filesystem path (created, with parents, on first
    open) or ``":memory:"`` for tests.  Opening applies any pending
    migrations from :data:`MIGRATIONS`.
    """

    def __init__(self, path):
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._migrate()

    # -- lifecycle ---------------------------------------------------------------

    def _migrate(self):
        with self._lock:
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            for index in range(version, len(MIGRATIONS)):
                self._conn.executescript(MIGRATIONS[index])
                self._conn.execute("PRAGMA user_version = %d" % (index + 1))
            self._conn.commit()

    @property
    def schema_version(self):
        """Number of applied DDL migrations (``PRAGMA user_version``)."""
        with self._lock:
            return self._conn.execute("PRAGMA user_version").fetchone()[0]

    def close(self):
        """Commit and release the connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- writes ------------------------------------------------------------------

    def create_run(self, spec, rerun_of=None):
        """Insert one ``queued`` run for ``spec``; returns its record dict.

        ``rerun_of`` records provenance when the spec was copied from a
        stored historical run.  The spec is stored by value — the registry
        row alone re-runs the job on any future daemon.
        """
        data = spec.to_dict()
        graph = data.get("graph") or {}
        now = time.time()
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO runs (job_id, algorithm, family, n, delta, backend,"
                " seed, spec, schema_version, status, created, rerun_of)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec.job_id,
                    spec.algorithm,
                    graph.get("family"),
                    graph.get("n"),
                    graph.get("degree"),
                    spec.backend,
                    spec.seed,
                    json.dumps(data, sort_keys=True),
                    SCHEMA_VERSION,
                    "queued",
                    now,
                    rerun_of,
                ),
            )
            run_id = cursor.lastrowid
            self._conn.execute(
                "INSERT INTO run_events (run_id, status, ts) VALUES (?, ?, ?)",
                (run_id, "queued", now),
            )
            self._conn.commit()
        return self.get(run_id)

    def _transition(self, run_id, status, assignments, values):
        now = time.time()
        with self._lock:
            self._conn.execute(
                "UPDATE runs SET status = ?%s WHERE id = ?"
                % ("".join(", %s = ?" % name for name in assignments)),
                tuple([status] + values + [run_id]),
            )
            self._conn.execute(
                "INSERT INTO run_events (run_id, status, ts) VALUES (?, ?, ?)",
                (run_id, status, now),
            )
            self._conn.commit()
        return now

    def mark_running(self, run_id):
        """Transition a run to ``running`` (idempotent across retries).

        The first transition stamps ``started``; a retry re-entering
        ``running`` only appends a ``run_events`` row.
        """
        row = self.get(run_id)
        if row is None:
            raise KeyError("unknown run id %r" % run_id)
        if row["started"] is not None:
            self._transition(run_id, "running", (), [])
        else:
            now = self._transition(run_id, "running", ("started",), [0.0])
            with self._lock:
                self._conn.execute(
                    "UPDATE runs SET started = ? WHERE id = ?", (now, run_id)
                )
                self._conn.commit()

    def mark_telemetry(self, run_id, filename):
        """Record the run's telemetry JSONL pointer (file name, not bytes)."""
        with self._lock:
            self._conn.execute(
                "UPDATE runs SET telemetry = ? WHERE id = ?", (filename, run_id)
            )
            self._conn.commit()

    def finish(self, run_id, outcome):
        """Persist a finished :class:`~repro.parallel.jobs.JobOutcome`.

        Maps the outcome to its terminal status (``done`` / ``timeout`` /
        ``failed``), stores the ``summarize`` envelope or the error record,
        and stamps ``finished`` / ``seconds`` / ``attempts``.
        """
        if outcome.ok:
            status = "done"
        elif outcome.timed_out:
            status = "timeout"
        else:
            status = "failed"
        now = time.time()
        with self._lock:
            self._conn.execute(
                "UPDATE runs SET status = ?, finished = ?, seconds = ?,"
                " attempts = ?, summary = ?, error = ? WHERE id = ?",
                (
                    status,
                    now,
                    outcome.seconds,
                    outcome.attempts,
                    json.dumps(outcome.summary, sort_keys=True)
                    if outcome.summary is not None
                    else None,
                    json.dumps(outcome.error, sort_keys=True)
                    if outcome.error is not None
                    else None,
                    run_id,
                ),
            )
            self._conn.execute(
                "INSERT INTO run_events (run_id, status, ts) VALUES (?, ?, ?)",
                (run_id, status, now),
            )
            self._conn.commit()
        return self.get(run_id)

    def fail(self, run_id, kind, message):
        """Force a run to ``failed`` with an error record (no outcome).

        The path for runs that cannot start at all — an unknown algorithm
        discovered late, an executor crash — so no row is ever stranded in
        a non-terminal state by a software fault.
        """
        now = time.time()
        with self._lock:
            self._conn.execute(
                "UPDATE runs SET status = 'failed', finished = ?, error = ?"
                " WHERE id = ?",
                (
                    now,
                    json.dumps(
                        {"kind": kind, "message": message, "traceback": None},
                        sort_keys=True,
                    ),
                    run_id,
                ),
            )
            self._conn.execute(
                "INSERT INTO run_events (run_id, status, ts) VALUES (?, ?, ?)",
                (run_id, "failed", now),
            )
            self._conn.commit()
        return self.get(run_id)

    # -- reads -------------------------------------------------------------------

    @staticmethod
    def _record(row):
        """A ``runs`` row as the wire-format record dict."""
        record = {
            "schema_version": row["schema_version"],
            "id": row["id"],
            "job_id": row["job_id"],
            "status": row["status"],
            "created": row["created"],
            "started": row["started"],
            "finished": row["finished"],
            "seconds": row["seconds"],
            "attempts": row["attempts"],
            "telemetry": row["telemetry"],
            "rerun_of": row["rerun_of"],
            "spec": json.loads(row["spec"]),
            "summary": json.loads(row["summary"]) if row["summary"] else None,
            "error": json.loads(row["error"]) if row["error"] else None,
        }
        check_schema_version(record["spec"], kind="stored spec")
        if record["summary"] is not None:
            check_schema_version(record["summary"], kind="stored summary")
        return record

    def get(self, run_id):
        """The record dict for one run id, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        return self._record(row) if row is not None else None

    def latest_for_job(self, job_id):
        """The most recent run record carrying ``job_id``, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE job_id = ? ORDER BY id DESC LIMIT 1",
                (job_id,),
            ).fetchone()
        return self._record(row) if row is not None else None

    def resolve(self, ref):
        """A run record from a reference: numeric run id or job-id string."""
        if isinstance(ref, int) or (isinstance(ref, str) and ref.isdigit()):
            return self.get(int(ref))
        return self.latest_for_job(ref)

    def list_runs(
        self,
        algorithm=None,
        n=None,
        delta=None,
        status=None,
        since=None,
        job_id=None,
        limit=None,
    ):
        """Run records matching every given filter, newest first.

        ``delta`` filters the stored graph ``degree`` column (the registry's
        degree-bound axis); ``since`` is a wall-clock lower bound on
        ``created``; ``limit`` caps the result count.
        """
        clauses, values = [], []
        for column, value in (
            ("algorithm", algorithm),
            ("n", n),
            ("delta", delta),
            ("status", status),
            ("job_id", job_id),
        ):
            if value is not None:
                clauses.append("%s = ?" % column)
                values.append(value)
        if since is not None:
            clauses.append("created >= ?")
            values.append(float(since))
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += " LIMIT %d" % int(limit)
        with self._lock:
            rows = self._conn.execute(sql, tuple(values)).fetchall()
        return [self._record(row) for row in rows]

    def events(self, run_id):
        """The run's status transitions, oldest first: ``[(status, ts), ...]``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, ts FROM run_events WHERE run_id = ?"
                " ORDER BY rowid",
                (run_id,),
            ).fetchall()
        return [(row["status"], row["ts"]) for row in rows]

    def counts(self):
        """Run counts by status (``{"queued": 2, "done": 40, ...}``)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS count FROM runs GROUP BY status"
            ).fetchall()
        return {row["status"]: row["count"] for row in rows}
