"""Flight recorder: trace timelines, a sampling profiler, a worker watchdog.

Three pieces, all layered on the :mod:`repro.obs.core` registry and all
opt-in (a disabled collector pays its usual single flag check and nothing
here runs at all):

timeline export
    :func:`chrome_trace` turns a telemetry record stream — live events, a
    JSONL file, or several files merged through ``Telemetry.absorb`` — into
    Chrome-trace / Perfetto JSON.  Spans become ``ph: "X"`` complete events
    on a ``(pid, source)`` lane, profiler samples become ``ph: "C"`` counter
    tracks, everything else with a timestamp becomes an instant event.
    Timestamps are the collectors' monotonic clocks (CLOCK_MONOTONIC is
    system-wide on Linux), normalized so the earliest record is t=0: parent
    and forked-worker spans land on one shared axis.

sampling profiler
    :class:`SamplingProfiler` is a background thread that buffers periodic
    readings — RSS, CPU time, graph-cache and shared-memory occupancy, plus
    anything registered via :func:`register_sampler` (the oocore engine adds
    shard-residency gauges) — and flushes them into the collector as
    ``profile.sample`` events at :meth:`~SamplingProfiler.stop`.  Buffering
    keeps the registry single-threaded and the instrumented run unlocked.
    Enabled by ``REPRO_PROFILE=1`` (CLI: ``--profile``); the cadence is
    ``REPRO_PROFILE_INTERVAL`` seconds.

worker health watchdog
    Pool workers touch a :class:`HeartbeatBoard` file between chunks
    (:func:`beat` — one tiny write, no locks, crash-proof); the parent's
    :class:`WorkerWatchdog` polls the board while waiting on results and
    surfaces ``worker.stalled`` / ``worker.restarted`` events and per-worker
    counters long before the per-job timeout fires.  Stall threshold:
    ``REPRO_STALL_SECONDS`` (clamped under the runner timeout);
    ``REPRO_DISABLE_WATCHDOG=1`` switches the whole mechanism off.
"""

import json
import os
import shutil
import tempfile
import threading
import time

from repro.obs.core import active

__all__ = [
    "HeartbeatBoard",
    "SamplingProfiler",
    "WorkerWatchdog",
    "beat",
    "chrome_trace",
    "cpu_seconds",
    "maybe_profiler",
    "profile_interval",
    "profiler_enabled",
    "register_sampler",
    "rss_bytes",
    "stall_seconds",
    "unregister_sampler",
    "watchdog_enabled",
    "write_chrome_trace",
]

_PROFILE_ENV = "REPRO_PROFILE"
_INTERVAL_ENV = "REPRO_PROFILE_INTERVAL"
_STALL_ENV = "REPRO_STALL_SECONDS"
_WATCHDOG_ENV = "REPRO_DISABLE_WATCHDOG"

_TRUTHY = ("1", "true", "yes", "on")


def profiler_enabled():
    """Whether ``REPRO_PROFILE`` asks for background sampling."""
    return os.environ.get(_PROFILE_ENV, "").strip().lower() in _TRUTHY


def profile_interval(default=0.05):
    """Sampling cadence in seconds (``REPRO_PROFILE_INTERVAL``, floor 1ms)."""
    raw = os.environ.get(_INTERVAL_ENV, "").strip()
    if raw:
        try:
            return max(float(raw), 0.001)
        except ValueError:
            pass
    return default


def stall_seconds(default=5.0):
    """Heartbeat age that counts as a stall (``REPRO_STALL_SECONDS``)."""
    raw = os.environ.get(_STALL_ENV, "").strip()
    if raw:
        try:
            return max(float(raw), 0.05)
        except ValueError:
            pass
    return default


def watchdog_enabled():
    """Whether the pool watchdog may run (``REPRO_DISABLE_WATCHDOG=1`` off)."""
    return os.environ.get(_WATCHDOG_ENV, "").strip().lower() not in _TRUTHY


# -- resource readings ----------------------------------------------------------------

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _PAGE_SIZE = 4096


def rss_bytes():
    """Current resident set size in bytes (None when unreadable).

    ``/proc/self/statm`` gives the live value; the ``resource`` fallback is
    the *peak* (``ru_maxrss``) — still a usable upper envelope on platforms
    without procfs.
    """
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - no procfs, no resource module
        return None


def cpu_seconds():
    """User + system CPU seconds consumed by this process."""
    times = os.times()
    return times.user + times.system


# -- extra sample sources -------------------------------------------------------------

_SAMPLERS = {}


def register_sampler(name, fn):
    """Register a callable contributing extra fields to every profiler sample.

    ``fn`` takes no arguments and returns a dict of JSON-scalar fields (or
    None); failures are swallowed so a broken gauge can never kill a run.
    The oocore engine registers its shard-residency gauges here for the
    duration of a run.
    """
    _SAMPLERS[name] = fn


def unregister_sampler(name):
    """Remove a sampler registered with :func:`register_sampler`."""
    _SAMPLERS.pop(name, None)


class SamplingProfiler:
    """Opt-in background sampler feeding ``profile.sample`` telemetry events.

    The sampling thread only appends to a private buffer; records reach the
    collector in one batch at :meth:`stop` (each keeping its original sample
    ``ts`` thanks to ``event``'s setdefault stamping), so the deliberately
    lock-free :class:`~repro.obs.core.Telemetry` is never touched from two
    threads.  One sample is always taken at start and one at stop, so even a
    sub-interval run gets a memory envelope.
    """

    def __init__(self, telemetry=None, interval=None, clock=time.perf_counter):
        self.telemetry = active() if telemetry is None else telemetry
        self.interval = profile_interval() if interval is None else interval
        self._clock = clock
        self._samples = []
        self._stop = threading.Event()
        self._thread = None

    def _take_sample(self):
        sample = {
            "ts": self._clock(),
            "rss_bytes": rss_bytes(),
            "cpu_seconds": cpu_seconds(),
        }
        try:
            from repro.parallel.jobs import graph_cache_stats

            stats = graph_cache_stats()
            sample["graph_cache_entries"] = stats["entries"]
            sample["graph_cache_bytes"] = stats["bytes"]
        except Exception:
            pass
        try:
            from repro.parallel.shm import segment_stats

            stats = segment_stats()
            sample["shm_segments"] = stats["segments"]
            sample["shm_bytes"] = stats["bytes"]
        except Exception:
            pass
        for fn in list(_SAMPLERS.values()):
            try:
                extra = fn()
            except Exception:
                continue
            if extra:
                for key, value in extra.items():
                    sample.setdefault(key, value)
        self._samples.append(sample)

    def _loop(self):
        while not self._stop.wait(self.interval):
            self._take_sample()

    def start(self):
        """Begin sampling (no-op for a disabled collector); returns self."""
        if self._thread is None and self.telemetry.enabled:
            self._stop.clear()
            self._take_sample()
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self):
        """Stop the thread and flush every buffered sample into the collector.

        Returns the number of samples recorded.  Also publishes peak-RSS /
        peak-CPU gauges so the aggregate snapshot carries the envelope even
        when nobody renders the timeline.
        """
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
            self._take_sample()
        samples, self._samples = self._samples, []
        telemetry = self.telemetry
        if getattr(telemetry, "_flight_profiler", None) is self:
            telemetry._flight_profiler = None
        if not samples or not telemetry.enabled:
            return 0
        for sample in samples:
            telemetry.event("profile.sample", **sample)
        rss = [s["rss_bytes"] for s in samples if s.get("rss_bytes") is not None]
        if rss:
            telemetry.gauge("profile.peak_rss_bytes", max(rss))
        telemetry.gauge("profile.samples", len(samples))
        return len(samples)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False


def maybe_profiler(telemetry=None):
    """A started profiler when ``REPRO_PROFILE`` is on, else None.

    At most one profiler per collector: nested calls (engine inside CLI
    inside a worker) return None instead of double-sampling.
    """
    telemetry = active() if telemetry is None else telemetry
    if not telemetry.enabled or not profiler_enabled():
        return None
    if getattr(telemetry, "_flight_profiler", None) is not None:
        return None
    profiler = SamplingProfiler(telemetry)
    telemetry._flight_profiler = profiler
    return profiler.start()


# -- worker heartbeats ----------------------------------------------------------------


def beat(board_path, ident=None):
    """Worker-side heartbeat: one tiny file write, silently best-effort.

    Writes the current ``time.monotonic()`` (system-wide on Linux, so the
    parent's watchdog can age it against its own clock) to
    ``<board_path>/<pid>``.  Failures are swallowed: a heartbeat must never
    be able to fail a job.
    """
    if not board_path:
        return
    ident = os.getpid() if ident is None else ident
    try:
        with open(os.path.join(board_path, str(ident)), "w") as handle:
            handle.write(repr(time.monotonic()))
    except OSError:
        pass


class HeartbeatBoard:
    """A directory of per-worker heartbeat files shared parent <-> workers.

    File-based on purpose: it works across fork without shared memory or
    NumPy, a crashed worker simply stops writing, and a torn write is one
    unparseable file the reader skips until the next beat lands.
    """

    def __init__(self, path=None):
        if path is None:
            self.path = tempfile.mkdtemp(prefix="repro-hb-")
            self._owns = True
        else:
            self.path = path
            self._owns = False

    def beat(self, ident=None):
        """Record a heartbeat for ``ident`` (default: this pid)."""
        beat(self.path, ident)

    def read(self):
        """Latest beat per worker: ``{pid: monotonic_seconds}``."""
        beats = {}
        try:
            names = os.listdir(self.path)
        except OSError:
            return beats
        for name in names:
            try:
                with open(os.path.join(self.path, name)) as handle:
                    beats[int(name)] = float(handle.read())
            except (OSError, ValueError):
                continue  # torn write or foreign file: wait for the next beat
        return beats

    def clear(self):
        """Drop every recorded beat (after a pool rebuild: fresh pids)."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        for name in names:
            try:
                os.unlink(os.path.join(self.path, name))
            except OSError:
                pass

    def close(self):
        """Remove the board directory if this instance created it."""
        if self._owns:
            shutil.rmtree(self.path, ignore_errors=True)
            self._owns = False

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class WorkerWatchdog:
    """Parent-side monitor turning heartbeat silence into telemetry.

    :meth:`poll` is called from the runner's result-wait loop; a worker
    whose last beat is older than ``stall_after`` gets one
    ``worker.stalled`` event (plus a ``parallel.worker.stalls`` counter
    bump) — *before* the job timeout machinery fires, which is the whole
    point.  After the pool is torn down and rebuilt the runner calls
    :meth:`notice_restart`, which emits ``worker.restarted`` for every
    worker that was stalled and resets the board for the fresh pids.
    """

    def __init__(self, telemetry, board, stall_after=None, clock=time.monotonic):
        self.telemetry = telemetry
        self.board = board
        self.stall_after = stall_seconds() if stall_after is None else max(
            float(stall_after), 0.05
        )
        self.poll_interval = max(self.stall_after / 4.0, 0.02)
        self._clock = clock
        self._last = {}
        self._stalled = set()
        self.stalls = 0
        self.restarts = 0

    def poll(self):
        """Scan the board once; returns the sorted list of stalled pids."""
        now = self._clock()
        telemetry = self.telemetry
        for pid, ts in self.board.read().items():
            previous = self._last.get(pid)
            if previous is None or ts > previous:
                self._last[pid] = ts
                if pid in self._stalled:
                    # It came back on its own before the timeout tore it down.
                    self._stalled.discard(pid)
                    telemetry.event("worker.recovered", worker=pid)
                continue
            age = now - ts
            if age >= self.stall_after and pid not in self._stalled:
                self._stalled.add(pid)
                self.stalls += 1
                telemetry.event(
                    "worker.stalled", worker=pid, stalled_seconds=age
                )
                telemetry.counter("parallel.worker.stalls")
        return sorted(self._stalled)

    def record_job(self, worker):
        """Count one delivered job against ``worker`` (utilization tally)."""
        if worker is not None:
            self.telemetry.counter("parallel.worker.jobs", worker=worker)

    def notice_restart(self):
        """The pool was rebuilt: stalled workers are gone, board is stale."""
        for pid in sorted(self._stalled):
            self.restarts += 1
            self.telemetry.event("worker.restarted", worker=pid)
            self.telemetry.counter("parallel.worker.restarts")
        self._stalled.clear()
        self._last.clear()
        self.board.clear()


# -- Chrome-trace / Perfetto export ---------------------------------------------------

#: Record fields that become structure (lane, timing) rather than args.
_STRUCTURAL_FIELDS = frozenset(
    ("type", "seq", "source_seq", "name", "path", "seconds", "ts", "pid",
     "source", "job", "trace_id")
)

#: profile.sample fields that are identity, not counter series.
_SAMPLE_SKIP = frozenset(("type", "seq", "source_seq", "ts", "pid", "source", "job"))


def _scalar(value):
    return value is None or isinstance(value, (bool, int, float, str))


def chrome_trace(records):
    """Telemetry records -> a Chrome-trace / Perfetto JSON object.

    ``records`` is anything :func:`repro.obs.exporters.read_jsonl` returns
    (or a live collector's ``events`` list).  Every record carrying a
    monotonic ``ts`` lands on a ``(pid, source)`` lane: spans with a
    duration become ``ph: "X"`` complete events, ``profile.sample`` records
    fan out into ``ph: "C"`` counter tracks (one per numeric field), and any
    other stamped record becomes a thread-scoped instant event.  Timestamps
    are shifted so the earliest record is t=0.
    """
    if hasattr(records, "events"):
        records = list(records.events)
    stamped = [
        r for r in records
        if r.get("type") != "snapshot"
        and isinstance(r.get("ts"), (int, float))
        and not isinstance(r.get("ts"), bool)
    ]
    origin = min((r["ts"] for r in stamped), default=0.0)

    def micros(ts):
        return (ts - origin) * 1e6

    lanes = {}  # (pid, lane label) -> tid (per-pid, 1-based)
    per_pid = {}

    def lane_tid(pid, label):
        key = (pid, label)
        tid = lanes.get(key)
        if tid is None:
            tid = per_pid.get(pid, 0) + 1
            per_pid[pid] = tid
            lanes[key] = tid
        return tid

    events = []
    for record in stamped:
        kind = record.get("type")
        pid = record.get("pid", 0)
        label = record.get("source") or record.get("job") or "main"
        if kind == "span" and isinstance(record.get("seconds"), (int, float)):
            args = {
                key: value
                for key, value in record.items()
                if key not in _STRUCTURAL_FIELDS and _scalar(value)
            }
            args["path"] = record.get("path", record.get("name", ""))
            events.append({
                "name": record.get("name", "span"),
                "cat": "span",
                "ph": "X",
                "ts": micros(record["ts"]),
                "dur": record["seconds"] * 1e6,
                "pid": pid,
                "tid": lane_tid(pid, label),
                "args": args,
            })
        elif kind == "profile.sample":
            for key, value in sorted(record.items()):
                if key in _SAMPLE_SKIP or isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)):
                    events.append({
                        "name": key,
                        "cat": "profile",
                        "ph": "C",
                        "ts": micros(record["ts"]),
                        "pid": pid,
                        "tid": 0,
                        "args": {key.rsplit(".", 1)[-1]: value},
                    })
        else:
            args = {
                key: value
                for key, value in record.items()
                if key not in _STRUCTURAL_FIELDS and _scalar(value)
            }
            events.append({
                "name": kind,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": micros(record["ts"]),
                "pid": pid,
                "tid": lane_tid(pid, label),
                "args": args,
            })

    metadata = []
    for pid in sorted(per_pid):
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "repro pid %s" % pid},
        })
    for (pid, label), tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(records, destination):
    """Serialize :func:`chrome_trace` output; returns the event count.

    ``destination`` is a path or a writable text handle.
    """
    trace = chrome_trace(records)
    if hasattr(destination, "write"):
        json.dump(trace, destination, sort_keys=True)
        destination.write("\n")
    else:
        with open(destination, "w") as handle:
            json.dump(trace, handle, sort_keys=True)
            handle.write("\n")
    return len(trace["traceEvents"])
