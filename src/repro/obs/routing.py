"""Per-run telemetry file routing: a collector that streams to JSONL live.

The batch-oriented exporters write a run's records *after* the run
(:func:`repro.obs.exporters.write_jsonl` on a finished collector).  The
experiment service needs the opposite: each run's records must land in that
run's own JSONL file *as they are recorded*, so ``GET /v1/runs/<id>/telemetry``
can tail an in-flight run off the flight-recorder stream.

:class:`RoutedTelemetry` is an ordinary :class:`~repro.obs.core.Telemetry`
whose event stream is additionally drained, record by record, into a
:class:`~repro.obs.exporters.JsonlWriter` (flushed per record, so a reader
polling the file never sees more than one torn final line).  Closing the
collector appends the aggregate snapshot line, making the file identical in
shape to a ``write_jsonl`` export — every existing ``obs`` CLI subcommand
and the Chrome-trace exporter read it unchanged.

:func:`route` scopes a routed collector exactly like
:func:`~repro.obs.core.capture`::

    with route("runs/17.jsonl", source="cor36-regular-n64-s1") as tel:
        repro.run(spec)          # worker records stitch in -> flushed live
    # file now ends with the snapshot line
"""

from contextlib import contextmanager

from repro.obs.core import Telemetry, configure
from repro.obs.exporters import JsonlWriter

__all__ = ["RoutedTelemetry", "route"]


class RoutedTelemetry(Telemetry):
    """A live collector whose records stream to a JSONL sink as recorded.

    ``destination`` is a path or writable text handle (see
    :class:`~repro.obs.exporters.JsonlWriter`).  Events, span completions
    and absorbed worker records are written (and flushed) the moment they
    enter the event list; :meth:`close` appends the snapshot line and
    releases the sink.  The in-memory behavior is unchanged — ``events``,
    ``snapshot()`` and every exporter keep working on the instance.
    """

    def __init__(self, destination, clock=None, source=None, trace_id=None):
        kwargs = {"source": source, "trace_id": trace_id}
        if clock is not None:
            kwargs["clock"] = clock
        super().__init__(**kwargs)
        self._writer = JsonlWriter(destination)
        self._flushed = 0
        self._closed = False

    def _drain(self):
        """Write every not-yet-flushed event to the sink."""
        if self._closed:
            return
        while self._flushed < len(self.events):
            self._writer.write(self.events[self._flushed])
            self._flushed += 1

    def event(self, kind, **fields):
        """Record one event and flush it to the sink immediately."""
        record = super().event(kind, **fields)
        self._drain()
        return record

    def absorb(self, records, **extra):
        """Stitch foreign records in, flushing each to the sink."""
        absorbed = super().absorb(records, **extra)
        self._drain()
        return absorbed

    def _finish_span(self, span, error):
        """Append the span-completion record and flush it."""
        super()._finish_span(span, error)
        self._drain()

    @property
    def closed(self):
        """True once :meth:`close` has sealed the file."""
        return self._closed

    def close(self):
        """Flush pending events, append the snapshot line, release the sink.

        Idempotent; after closing, further records stay in memory only (the
        file is sealed — its final line is the aggregate snapshot, exactly
        like a :func:`~repro.obs.exporters.write_jsonl` export).
        """
        if self._closed:
            return
        self._drain()
        self._writer.write(self.snapshot())
        self._closed = True
        self._writer.close()


@contextmanager
def route(destination, source=None, trace_id=None):
    """Scoped per-run routing: install a :class:`RoutedTelemetry`, restore after.

    The streamed file is complete (snapshot line included) by the time the
    ``with`` block exits, even on error — the service's per-run telemetry
    files are sealed exactly when the run reaches a terminal status.
    """
    from repro.obs import core

    previous = core.active()
    telemetry = RoutedTelemetry(destination, source=source, trace_id=trace_id)
    configure(telemetry)
    try:
        yield telemetry
    finally:
        configure(previous)
        telemetry.close()
