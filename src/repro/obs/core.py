"""Telemetry core: a process-wide registry of counters, gauges, histograms
and nestable timed spans.

Observability is opt-in: the module-level collector defaults to
:class:`NullTelemetry`, whose every method is a no-op and whose ``span``
returns one shared, stateless context manager — instrumented hot paths pay a
single attribute check (``tel.enabled``) and nothing else.  Call
:func:`configure` (or use the :func:`capture` context manager in tests) to
swap in a live :class:`Telemetry` that records everything.

Instrumentation vocabulary
--------------------------
counters
    Monotonic totals (``engine.runs``, ``selfstab.corruptions``), keyed by
    name plus a canonicalized tag set.
gauges
    Last-write-wins values (``selfstab.max_message_bits``).
histograms
    Aggregated observations (count / total / min / max), e.g. per-run wall
    times and adjustment radii.
spans
    Timed, nestable regions: ``with tel.span("pipeline.stage", stage=name)``.
    On exit a span appends one event carrying its slash-joined nesting path
    and duration, and feeds a ``span.<name>`` histogram.
events
    Free-form structured records (one ``engine.run`` record per engine run,
    with per-round rows) — the rows of the JSONL export.

Flight-recorder identity
------------------------
Every live collector knows *who* it is: the recording pid, an optional
``source`` lane label (the job runner sets it to the job id inside workers),
and a ``trace_id`` shared by every collector of one distributed run.  Events
and span completions are stamped with a monotonic ``ts`` (the collector's
clock — ``time.perf_counter`` is CLOCK_MONOTONIC on Linux, which is
system-wide, so timestamps from forked workers are directly comparable to
the parent's) plus ``pid``/``source``, which is what lets
:mod:`repro.obs.flight` reassemble a cross-process timeline.  ``absorb``
keeps foreign stamps untouched.

The registry is deliberately not thread-safe: the engines are synchronous
and single-threaded, and keeping the hot path lock-free is the point.
"""

import os
import time
import uuid
from contextlib import contextmanager

__all__ = [
    "Histogram",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "active",
    "capture",
    "configure",
    "counter",
    "disable",
    "event",
    "gauge",
    "histogram",
    "span",
]


class _NullSpan:
    """The shared do-nothing span; reused so disabled spans allocate nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **fields):
        """Ignore extra fields (mirror of :meth:`Span.set`)."""
        return self


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled collector: records nothing, allocates nothing."""

    enabled = False

    def span(self, name, **tags):
        """Return the shared no-op span."""
        return _NULL_SPAN

    def counter(self, name, value=1, **tags):
        """No-op."""

    def gauge(self, name, value, **tags):
        """No-op."""

    def histogram(self, name, value, **tags):
        """No-op."""

    def event(self, kind, **fields):
        """No-op."""

    def absorb(self, records, **extra):
        """Discard foreign records (mirror of :meth:`Telemetry.absorb`)."""
        return 0

    def trace_context(self):
        """No trace to propagate (mirror of :meth:`Telemetry.trace_context`)."""
        return None

    def snapshot(self):
        """An empty aggregate snapshot (keeps exporters total)."""
        return {"type": "snapshot", "counters": [], "gauges": [], "histograms": []}


_NULL = NullTelemetry()


class Histogram:
    """Streaming aggregate of one metric: count, total, min, max."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def record(self, value):
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other):
        """Fold another aggregate in (a :class:`Histogram` or its dict form).

        Count and total add; min and max combine.  Used when stitching a
        worker process's exported snapshot into the parent collector.
        """
        if isinstance(other, Histogram):
            count, total = other.count, other.total
            minimum, maximum = other.minimum, other.maximum
        else:
            count, total = other["count"], other["total"]
            minimum, maximum = other["min"], other["max"]
        if not count:
            return
        self.count += count
        self.total += total
        if minimum is not None and (self.minimum is None or minimum < self.minimum):
            self.minimum = minimum
        if maximum is not None and (self.maximum is None or maximum > self.maximum):
            self.maximum = maximum

    @property
    def mean(self):
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self):
        """JSON-serializable aggregate."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class Span:
    """One timed region; produced by :meth:`Telemetry.span`, used as a
    context manager.  ``set(**fields)`` attaches extra tags any time before
    the block exits (they land on the span's event)."""

    __slots__ = ("_telemetry", "name", "tags", "path", "seconds", "ts", "_start")

    def __init__(self, telemetry, name, tags):
        self._telemetry = telemetry
        self.name = name
        self.tags = tags
        self.path = name
        self.seconds = None
        self.ts = None
        self._start = None

    def set(self, **fields):
        """Attach extra fields to the span's completion event."""
        self.tags.update(fields)
        return self

    def __enter__(self):
        stack = self._telemetry._span_stack
        if stack:
            self.path = stack[-1].path + "/" + self.name
        stack.append(self)
        self.ts = self._start = self._telemetry._clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        telemetry = self._telemetry
        self.seconds = telemetry._clock() - self._start
        telemetry._span_stack.pop()
        telemetry._finish_span(self, exc_type.__name__ if exc_type else None)
        return False


class Telemetry:
    """A live collector: every record lands in memory, exporters serialize it.

    ``clock`` is injectable for deterministic tests; it must be a monotonic
    zero-argument callable returning seconds.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, source=None, trace_id=None):
        self._clock = clock
        self.pid = os.getpid()
        self.source = source
        self.trace_id = uuid.uuid4().hex[:16] if trace_id is None else trace_id
        self.events = []
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        self._span_stack = []

    # -- recording ---------------------------------------------------------------

    @staticmethod
    def _key(name, tags):
        return (name, tuple(sorted(tags.items())))

    def span(self, name, **tags):
        """A nestable timed region; use as ``with tel.span(...) as sp:``."""
        return Span(self, name, tags)

    def counter(self, name, value=1, **tags):
        """Add ``value`` to a monotonic counter."""
        key = self._key(name, tags)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name, value, **tags):
        """Set a last-write-wins value."""
        self.gauges[self._key(name, tags)] = value

    def histogram(self, name, value, **tags):
        """Fold one observation into the named histogram."""
        key = self._key(name, tags)
        agg = self.histograms.get(key)
        if agg is None:
            agg = self.histograms[key] = Histogram()
        agg.record(value)

    def event(self, kind, **fields):
        """Append one structured record (a future JSONL line).

        Records are stamped with a monotonic ``ts`` plus the collector's
        ``pid`` / ``source`` lane — via ``setdefault``, so callers replaying
        buffered observations (the sampling profiler) or relaying foreign
        records keep the original stamps.
        """
        record = {"type": kind, "seq": len(self.events)}
        record.update(fields)
        record.setdefault("ts", self._clock())
        record.setdefault("pid", self.pid)
        if self.source is not None:
            record.setdefault("source", self.source)
        self.events.append(record)
        return record

    def absorb(self, records, **extra):
        """Stitch another collector's exported records into this one.

        ``records`` is an iterable of dicts in the JSONL export format (see
        :func:`repro.obs.exporters.write_jsonl`): ``snapshot`` records merge
        into this collector's counters / gauges / histograms (counters add,
        gauges last-write-wins, histograms fold via :meth:`Histogram.merge`);
        every other record is appended to the event stream with a fresh local
        ``seq`` — the foreign sequence number, if any, is preserved as
        ``source_seq`` so per-worker ordering stays reconstructible.

        ``extra`` fields are stamped onto every absorbed event; the parallel
        job runner uses this to tag each worker record with its job id.
        Returns the number of records absorbed.
        """
        absorbed = 0
        for record in records:
            kind = record.get("type")
            if kind == "snapshot":
                for row in record.get("counters", ()):
                    self.counter(row["name"], row["value"], **row.get("tags", {}))
                for row in record.get("gauges", ()):
                    self.gauge(row["name"], row["value"], **row.get("tags", {}))
                for row in record.get("histograms", ()):
                    key = self._key(row["name"], row.get("tags", {}))
                    agg = self.histograms.get(key)
                    if agg is None:
                        agg = self.histograms[key] = Histogram()
                    agg.merge(row)
            else:
                stitched = dict(record)
                if "seq" in stitched:
                    stitched["source_seq"] = stitched.pop("seq")
                stitched.update(extra)
                stitched["seq"] = len(self.events)
                self.events.append(stitched)
            absorbed += 1
        return absorbed

    def trace_context(self):
        """The identity to propagate into worker processes (a plain dict).

        Workers created for this run pass it back into :func:`capture` so
        every collector of the run shares one ``trace_id`` and the exported
        records stitch into a single timeline.
        """
        return {"trace_id": self.trace_id, "source": self.source}

    def _finish_span(self, span, error):
        record = {
            "type": "span",
            "seq": len(self.events),
            "name": span.name,
            "path": span.path,
            "seconds": span.seconds,
            "ts": span.ts,
            "pid": self.pid,
        }
        if self.source is not None:
            record["source"] = self.source
        for key, value in span.tags.items():
            record.setdefault(key, value)
        if error is not None:
            record["error"] = error
        self.events.append(record)
        self.histogram("span." + span.name, span.seconds)

    # -- aggregation --------------------------------------------------------------

    @staticmethod
    def _rows(table, serialize=lambda value: value):
        return [
            {"name": name, "tags": dict(tags), "value": serialize(value)}
            for (name, tags), value in sorted(table.items(), key=lambda kv: kv[0])
        ]

    def snapshot(self):
        """Aggregated counters / gauges / histograms as one JSON-ready record."""
        return {
            "type": "snapshot",
            "pid": self.pid,
            "trace_id": self.trace_id,
            "counters": self._rows(self.counters),
            "gauges": self._rows(self.gauges),
            "histograms": [
                {"name": name, "tags": dict(tags), **agg.to_dict()}
                for (name, tags), agg in sorted(
                    self.histograms.items(), key=lambda kv: kv[0]
                )
            ],
        }

    def counter_value(self, name, **tags):
        """Current value of one counter (0 when never touched)."""
        return self.counters.get(self._key(name, tags), 0)

    def events_of(self, kind):
        """All recorded events of one type, in order."""
        return [record for record in self.events if record["type"] == kind]


# -- the process-wide collector -----------------------------------------------------

_active = _NULL


def active():
    """The current process-wide collector (the no-op one by default)."""
    return _active


def configure(telemetry=None, source=None, trace_id=None):
    """Install (and return) a live collector process-wide.

    ``source`` / ``trace_id`` seed the fresh collector's flight-recorder
    identity when no explicit ``telemetry`` instance is supplied.
    """
    global _active
    if telemetry is None:
        telemetry = Telemetry(source=source, trace_id=trace_id)
    _active = telemetry
    return _active


def disable():
    """Restore the no-op collector; returns the collector that was active."""
    global _active
    previous = _active
    _active = _NULL
    return previous


@contextmanager
def capture(source=None, trace_id=None):
    """Scoped collection: installs a fresh collector, restores the old one.

    ``source`` labels this collector's lane in the merged timeline and
    ``trace_id`` joins it to an existing distributed trace (worker processes
    pass the parent's :meth:`Telemetry.trace_context` values here).

    >>> with capture() as tel:
    ...     run_something()
    >>> tel.events_of("engine.run")
    """
    global _active
    previous = _active
    telemetry = configure(source=source, trace_id=trace_id)
    try:
        yield telemetry
    finally:
        _active = previous


def span(name, **tags):
    """Module-level convenience: a span on the active collector."""
    return _active.span(name, **tags)


def counter(name, value=1, **tags):
    """Module-level convenience: a counter bump on the active collector."""
    _active.counter(name, value, **tags)


def gauge(name, value, **tags):
    """Module-level convenience: a gauge write on the active collector."""
    _active.gauge(name, value, **tags)


def histogram(name, value, **tags):
    """Module-level convenience: a histogram sample on the active collector."""
    _active.histogram(name, value, **tags)


def event(kind, **fields):
    """Module-level convenience: an event on the active collector."""
    return _active.event(kind, **fields)
