"""Structured telemetry for the reproduction's execution layers.

The paper's claims are quantitative — round counts ``O(Delta + log* n)``,
CONGEST / Bit-Round message and bit budgets (Section 5), stabilization times
(Section 7) — so every engine in this repository can emit machine-readable
evidence per run: spans, counters, gauges, histograms and structured run
records.  Collection is opt-in and free when off: the default collector is a
no-op whose hot-path cost is one attribute check.

Typical use::

    from repro import obs
    from repro.obs.exporters import write_jsonl

    with obs.capture() as tel:
        delta_plus_one_coloring(graph)
    write_jsonl(tel, "run.jsonl")

or process-wide (as the CLI's ``--telemetry out.jsonl`` does)::

    tel = obs.configure()
    ...
    write_jsonl(tel, path)
    obs.disable()

See ``docs/observability.md`` for the event schema and the bench-regression
workflow built on top of these records.  :mod:`repro.obs.flight` adds the
flight-recorder layer on top: Chrome-trace timeline export, the sampling
profiler (``REPRO_PROFILE=1``), and the pool-worker health watchdog.
"""

from repro.obs.core import (
    Histogram,
    NullTelemetry,
    Span,
    Telemetry,
    active,
    capture,
    configure,
    counter,
    disable,
    event,
    gauge,
    histogram,
    span,
)
from repro.obs.exporters import (
    JsonlWriter,
    comparable_view,
    prometheus_text,
    read_jsonl,
    summary_table,
    write_jsonl,
)
from repro.obs.flight import (
    HeartbeatBoard,
    SamplingProfiler,
    WorkerWatchdog,
    chrome_trace,
    maybe_profiler,
    write_chrome_trace,
)
from repro.obs.routing import RoutedTelemetry, route

__all__ = [
    "HeartbeatBoard",
    "Histogram",
    "JsonlWriter",
    "NullTelemetry",
    "RoutedTelemetry",
    "SamplingProfiler",
    "Span",
    "Telemetry",
    "WorkerWatchdog",
    "active",
    "capture",
    "chrome_trace",
    "comparable_view",
    "configure",
    "counter",
    "disable",
    "event",
    "gauge",
    "histogram",
    "maybe_profiler",
    "prometheus_text",
    "read_jsonl",
    "route",
    "span",
    "summary_table",
    "write_chrome_trace",
    "write_jsonl",
]
