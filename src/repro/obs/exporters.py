"""Telemetry exporters: JSONL event streams, Prometheus text, summary tables.

The JSONL export is the machine-readable evidence trail of a run: one line
per recorded event (``engine.run`` records with per-round rows, ``span``
completions, ``pipeline.run`` / ``selfstab.run`` summaries, corruption
events, ...) followed by one final ``snapshot`` line holding the aggregated
counters, gauges and histograms.  Every line round-trips through
``json.loads``; the schema is documented in ``docs/observability.md``.

:func:`comparable_view` strips the fields that legitimately differ between
the reference and batch backends (wall-clock timings, the backend label) so
telemetry parity can be asserted bit-for-bit in tests.
"""

import json

__all__ = [
    "comparable_view",
    "prometheus_text",
    "read_jsonl",
    "summary_table",
    "write_jsonl",
]

# Fields whose values are wall-clock or backend-identity dependent (the
# batch engine hands palettes off as ndarrays where the reference engine
# hands off lists); stripped by comparable_view so reference-vs-batch
# telemetry can be compared exactly.
NONDETERMINISTIC_FIELDS = frozenset(
    ("seconds", "wall_seconds", "backend", "handoff")
)


def write_jsonl(telemetry, destination):
    """Write every event plus the final snapshot as JSON Lines.

    ``destination`` is a path or a writable text handle; returns the number
    of lines written.
    """
    records = list(telemetry.events) + [telemetry.snapshot()]
    if hasattr(destination, "write"):
        for record in records:
            destination.write(json.dumps(record, sort_keys=True) + "\n")
    else:
        with open(destination, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(source):
    """Load a JSONL telemetry stream back into a list of records."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source) as handle:
            lines = handle.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def comparable_view(records):
    """Records with timing / backend-identity fields recursively removed.

    The result is deterministic for a deterministic workload, so telemetry
    from ``backend="reference"`` and ``backend="batch"`` can be compared for
    equality (the acceptance contract of the batch engines extends to their
    telemetry).
    """
    def strip(value):
        if isinstance(value, dict):
            return {
                key: strip(item)
                for key, item in value.items()
                if key not in NONDETERMINISTIC_FIELDS
            }
        if isinstance(value, list):
            return [strip(item) for item in value]
        return value

    return [strip(record) for record in records]


def _prom_name(name):
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(tags):
    if not tags:
        return ""
    inner = ",".join(
        '%s="%s"' % (key, str(value).replace('"', '\\"'))
        for key, value in sorted(tags.items())
    )
    return "{%s}" % inner


def prometheus_text(snapshot):
    """Render one aggregated snapshot in Prometheus text exposition format.

    Accepts either a snapshot record (``{"type": "snapshot", ...}``) or a
    live collector (its :meth:`snapshot` is taken).  Histograms are emitted
    as ``_count`` / ``_sum`` / ``_min`` / ``_max`` series.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    lines = []
    for row in snapshot.get("counters", []):
        name = _prom_name(row["name"])
        lines.append("# TYPE %s counter" % name)
        lines.append("%s%s %s" % (name, _prom_labels(row["tags"]), row["value"]))
    for row in snapshot.get("gauges", []):
        name = _prom_name(row["name"])
        lines.append("# TYPE %s gauge" % name)
        lines.append("%s%s %s" % (name, _prom_labels(row["tags"]), row["value"]))
    for row in snapshot.get("histograms", []):
        name = _prom_name(row["name"])
        labels = _prom_labels(row["tags"])
        lines.append("# TYPE %s summary" % name)
        lines.append("%s_count%s %s" % (name, labels, row["count"]))
        lines.append("%s_sum%s %s" % (name, labels, row["total"]))
        if row["min"] is not None:
            lines.append("%s_min%s %s" % (name, labels, row["min"]))
            lines.append("%s_max%s %s" % (name, labels, row["max"]))
    return "\n".join(lines) + ("\n" if lines else "")


def _format_rows(header, rows):
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines = [fmt % header, fmt % tuple("-" * w for w in widths)]
    lines.extend(fmt % tuple(str(c) for c in row) for row in rows)
    return lines


def summary_table(records):
    """Human summary of a telemetry stream (records from :func:`read_jsonl`,
    or a live collector — its events plus snapshot are summarized)."""
    if hasattr(records, "snapshot"):
        records = list(records.events) + [records.snapshot()]
    sections = []

    runs = [r for r in records if r.get("type") == "engine.run"]
    if runs:
        rows = [
            (
                r.get("stage", "?"),
                r.get("backend", "?"),
                r.get("rounds_used", 0),
                r.get("total_messages", 0),
                r.get("total_bits", 0),
                "%.4f" % r.get("wall_seconds", 0.0),
            )
            for r in runs
        ]
        sections.append("engine runs")
        sections.extend(
            _format_rows(
                ("stage", "backend", "rounds", "messages", "bits", "seconds"), rows
            )
        )

    spans = [r for r in records if r.get("type") == "span"]
    if spans:
        rows = [
            (r.get("path", r.get("name", "?")), "%.4f" % (r.get("seconds") or 0.0))
            for r in spans
        ]
        sections.append("")
        sections.append("spans")
        sections.extend(_format_rows(("path", "seconds"), rows))

    stabilizations = [r for r in records if r.get("type") == "selfstab.run"]
    if stabilizations:
        rows = [
            (
                r.get("algorithm", "?"),
                r.get("rounds_used", 0),
                r.get("legal", "?"),
                r.get("touched", 0),
                r.get("max_message_bits", 0),
            )
            for r in stabilizations
        ]
        sections.append("")
        sections.append("self-stabilization runs")
        sections.extend(
            _format_rows(("algorithm", "rounds", "legal", "touched", "bits"), rows)
        )

    snapshots = [r for r in records if r.get("type") == "snapshot"]
    if snapshots:
        snapshot = snapshots[-1]
        if snapshot["counters"]:
            rows = [
                (
                    row["name"],
                    " ".join(
                        "%s=%s" % kv for kv in sorted(row["tags"].items())
                    ) or "-",
                    row["value"],
                )
                for row in snapshot["counters"]
            ]
            sections.append("")
            sections.append("counters")
            sections.extend(_format_rows(("name", "tags", "value"), rows))
        if snapshot["histograms"]:
            rows = [
                (
                    row["name"],
                    " ".join(
                        "%s=%s" % kv for kv in sorted(row["tags"].items())
                    ) or "-",
                    row["count"],
                    "%.4g" % row["mean"] if row["count"] else "-",
                    "%.4g" % row["min"] if row["min"] is not None else "-",
                    "%.4g" % row["max"] if row["max"] is not None else "-",
                )
                for row in snapshot["histograms"]
            ]
            sections.append("")
            sections.append("histograms")
            sections.extend(
                _format_rows(("name", "tags", "count", "mean", "min", "max"), rows)
            )

    if not sections:
        return "no telemetry records\n"
    return "\n".join(sections) + "\n"
