"""Telemetry exporters: JSONL event streams, Prometheus text, summary tables.

The JSONL export is the machine-readable evidence trail of a run: one line
per recorded event (``engine.run`` records with per-round rows, ``span``
completions, ``pipeline.run`` / ``selfstab.run`` summaries, corruption
events, ...) followed by one final ``snapshot`` line holding the aggregated
counters, gauges and histograms.  Every line round-trips through
``json.loads``; the schema is documented in ``docs/observability.md``.

:func:`comparable_view` strips the fields that legitimately differ between
the reference and batch backends (wall-clock timings, the backend label) so
telemetry parity can be asserted bit-for-bit in tests.
"""

import json

__all__ = [
    "JsonlWriter",
    "comparable_view",
    "prometheus_text",
    "read_jsonl",
    "summary_table",
    "write_jsonl",
]

# Fields whose values are wall-clock or backend-identity dependent (the
# batch engine hands palettes off as ndarrays where the reference engine
# hands off lists), plus the flight-recorder stamps (timestamps, process
# ids, trace ids, per-worker labels and resource readings); stripped by
# comparable_view so reference-vs-batch telemetry can be compared exactly.
NONDETERMINISTIC_FIELDS = frozenset(
    (
        "seconds",
        "wall_seconds",
        "backend",
        "handoff",
        "ts",
        "pid",
        "source",
        "trace_id",
        "worker",
        "stalled_seconds",
        "rss_bytes",
        "cpu_seconds",
        "interval",
        "samples",
    )
)

# Whole record types that only exist because of wall-clock behavior (which
# worker got which chunk when, how memory moved): dropped entirely by
# comparable_view — their very presence and count is nondeterministic.
NONDETERMINISTIC_EVENT_TYPES = frozenset(
    (
        "profile.sample",
        "worker.heartbeat",
        "worker.stalled",
        "worker.recovered",
        "worker.restarted",
    )
)


class JsonlWriter:
    """A streaming, per-record-flushed JSONL sink.

    Each :meth:`write` serializes one record, writes it with a trailing
    newline and flushes the handle, so a process killed mid-run (the
    timeout pool rebuild path) leaves at worst one torn *final* line —
    which :func:`read_jsonl` repairs — never a silently truncated stream.
    """

    def __init__(self, destination):
        if hasattr(destination, "write"):
            self._handle = destination
            self._owns = False
        else:
            self._handle = open(destination, "w")
            self._owns = True
        self.lines = 0

    def write(self, record):
        """Serialize, write and flush one record; returns the line count."""
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.lines += 1
        return self.lines

    def close(self):
        """Close the handle if this writer opened it (idempotent)."""
        if self._owns:
            self._handle.close()
            self._owns = False

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def write_jsonl(telemetry, destination):
    """Write every event plus the final snapshot as JSON Lines.

    ``destination`` is a path or a writable text handle; returns the number
    of lines written.  Writes are flushed per record (:class:`JsonlWriter`),
    so a crash mid-export cannot leave more than one torn line.
    """
    records = list(telemetry.events) + [telemetry.snapshot()]
    with JsonlWriter(destination) as writer:
        for record in records:
            writer.write(record)
    return len(records)


def read_jsonl(source, strict=False):
    """Load a JSONL telemetry stream back into a list of records.

    A torn *final* line — the signature a killed writer leaves behind — is
    silently dropped (the stream up to it is intact because the exporter
    flushes per record).  Corruption anywhere else still raises
    ``ValueError`` with the offending line number; ``strict=True`` raises
    for the torn tail too.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source) as handle:
            lines = handle.read().splitlines()
    numbered = [(i + 1, line) for i, line in enumerate(lines) if line.strip()]
    records = []
    for pos, (lineno, line) in enumerate(numbered):
        try:
            records.append(json.loads(line))
        except ValueError:
            if pos == len(numbered) - 1 and not strict:
                break  # torn final line: repairable truncation, drop it
            raise ValueError(
                "unparseable JSONL record at line %d" % lineno
            ) from None
    return records


def comparable_view(records):
    """Records with timing / backend-identity fields recursively removed.

    The result is deterministic for a deterministic workload, so telemetry
    from ``backend="reference"`` and ``backend="batch"`` can be compared for
    equality (the acceptance contract of the batch engines extends to their
    telemetry).  Flight-recorder stamps (``ts`` / ``pid`` / ``source`` /
    ``trace_id`` / per-worker fields) are stripped, and records that exist
    only because of scheduling or resource behavior (profiler samples,
    heartbeats, stall notices) are dropped outright.
    """
    def strip(value):
        if isinstance(value, dict):
            return {
                key: strip(item)
                for key, item in value.items()
                if key not in NONDETERMINISTIC_FIELDS
            }
        if isinstance(value, list):
            return [strip(item) for item in value]
        return value

    return [
        strip(record)
        for record in records
        if record.get("type") not in NONDETERMINISTIC_EVENT_TYPES
    ]


def _prom_name(name):
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(tags):
    if not tags:
        return ""
    inner = ",".join(
        '%s="%s"' % (key, str(value).replace('"', '\\"'))
        for key, value in sorted(tags.items())
    )
    return "{%s}" % inner


def prometheus_text(snapshot):
    """Render one aggregated snapshot in Prometheus text exposition format.

    Accepts either a snapshot record (``{"type": "snapshot", ...}``) or a
    live collector (its :meth:`snapshot` is taken).  Histograms are emitted
    as ``_count`` / ``_sum`` / ``_min`` / ``_max`` series.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    lines = []
    for row in snapshot.get("counters", []):
        name = _prom_name(row["name"])
        lines.append("# TYPE %s counter" % name)
        lines.append("%s%s %s" % (name, _prom_labels(row["tags"]), row["value"]))
    for row in snapshot.get("gauges", []):
        name = _prom_name(row["name"])
        lines.append("# TYPE %s gauge" % name)
        lines.append("%s%s %s" % (name, _prom_labels(row["tags"]), row["value"]))
    for row in snapshot.get("histograms", []):
        name = _prom_name(row["name"])
        labels = _prom_labels(row["tags"])
        lines.append("# TYPE %s summary" % name)
        lines.append("%s_count%s %s" % (name, labels, row["count"]))
        lines.append("%s_sum%s %s" % (name, labels, row["total"]))
        if row["min"] is not None:
            lines.append("%s_min%s %s" % (name, labels, row["min"]))
            lines.append("%s_max%s %s" % (name, labels, row["max"]))
    return "\n".join(lines) + ("\n" if lines else "")


def _format_rows(header, rows):
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines = [fmt % header, fmt % tuple("-" * w for w in widths)]
    lines.extend(fmt % tuple(str(c) for c in row) for row in rows)
    return lines


def summary_table(records):
    """Human summary of a telemetry stream (records from :func:`read_jsonl`,
    or a live collector — its events plus snapshot are summarized)."""
    if hasattr(records, "snapshot"):
        records = list(records.events) + [records.snapshot()]
    sections = []

    runs = [r for r in records if r.get("type") == "engine.run"]
    if runs:
        rows = [
            (
                r.get("stage", "?"),
                r.get("backend", "?"),
                r.get("rounds_used", 0),
                r.get("total_messages", 0),
                r.get("total_bits", 0),
                "%.4f" % r.get("wall_seconds", 0.0),
            )
            for r in runs
        ]
        sections.append("engine runs")
        sections.extend(
            _format_rows(
                ("stage", "backend", "rounds", "messages", "bits", "seconds"), rows
            )
        )

    spans = [r for r in records if r.get("type") == "span"]
    if spans:
        rows = [
            (r.get("path", r.get("name", "?")), "%.4f" % (r.get("seconds") or 0.0))
            for r in spans
        ]
        sections.append("")
        sections.append("spans")
        sections.extend(_format_rows(("path", "seconds"), rows))

    stabilizations = [r for r in records if r.get("type") == "selfstab.run"]
    if stabilizations:
        rows = [
            (
                r.get("algorithm", "?"),
                r.get("rounds_used", 0),
                r.get("legal", "?"),
                r.get("touched", 0),
                r.get("max_message_bits", 0),
            )
            for r in stabilizations
        ]
        sections.append("")
        sections.append("self-stabilization runs")
        sections.extend(
            _format_rows(("algorithm", "rounds", "legal", "touched", "bits"), rows)
        )

    snapshots = [r for r in records if r.get("type") == "snapshot"]
    if snapshots:
        snapshot = snapshots[-1]
        if snapshot["counters"]:
            rows = [
                (
                    row["name"],
                    " ".join(
                        "%s=%s" % kv for kv in sorted(row["tags"].items())
                    ) or "-",
                    row["value"],
                )
                for row in snapshot["counters"]
            ]
            sections.append("")
            sections.append("counters")
            sections.extend(_format_rows(("name", "tags", "value"), rows))
        if snapshot["histograms"]:
            rows = [
                (
                    row["name"],
                    " ".join(
                        "%s=%s" % kv for kv in sorted(row["tags"].items())
                    ) or "-",
                    row["count"],
                    "%.4g" % row["mean"] if row["count"] else "-",
                    "%.4g" % row["min"] if row["min"] is not None else "-",
                    "%.4g" % row["max"] if row["max"] is not None else "-",
                )
                for row in snapshot["histograms"]
            ]
            sections.append("")
            sections.append("histograms")
            sections.extend(
                _format_rows(("name", "tags", "count", "mean", "min", "max"), rows)
            )

    if not sections:
        return "no telemetry records\n"
    return "\n".join(sections) + "\n"
