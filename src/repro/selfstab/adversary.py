"""Seeded fault campaigns for exercising the self-stabilizing algorithms.

The fully-dynamic adversary of Section 1.2.1 may, between rounds, make
"arbitrary and completely unpredictable changes in the entire RAM" and
rewire the topology within the ROM bounds.  :class:`FaultCampaign` packages
the standard attack patterns used by tests, benchmarks and examples:

* random RAM corruption (garbage colors, stolen neighbor colors — the
  nastiest kind, since they create real conflicts),
* vertex churn (crash / respawn),
* edge churn (rewire links under the degree bound).

Everything is driven by an explicit seed for reproducibility.

All injection goes through the engine's ``corrupt`` fault API, so it is
array-backed for free on a :class:`~repro.selfstab.fast_engine.
BatchSelfStabEngine`: each corruption writes the encoded value straight
into the RAM columns in place (no dict rebuild, no column re-encode), and
topology churn invalidates the CSR view once per epoch, not per event.
"""

import random

__all__ = ["FaultCampaign", "TargetedAttacks"]


class FaultCampaign:
    """A reproducible source of faults against a SelfStabEngine."""

    def __init__(self, seed):
        self.rng = random.Random(seed)

    def corrupt_random_rams(self, engine, count):
        """Overwrite ``count`` random vertices' RAM with adversarial values.

        Half the corruptions copy a neighbor's RAM (guaranteed conflicts),
        half write garbage.
        """
        vertices = engine.graph.vertices()
        if not vertices:
            return []
        hit = []
        for _ in range(count):
            v = self.rng.choice(vertices)
            neighbors = engine.graph.neighbors(v)
            if neighbors and self.rng.random() < 0.5:
                engine.corrupt(v, engine.rams[self.rng.choice(neighbors)])
            else:
                engine.corrupt(v, self._garbage())
            hit.append(v)
        return hit

    def corrupt_many(self, engine, assignments):
        """Apply an explicit ``{vertex: ram}`` burst through the fault API.

        Deterministic (consumes no randomness); useful for replaying a
        recorded burst against several engines.  On a batch engine each
        write lands in the RAM columns in place.
        """
        hit = []
        for vertex, ram in sorted(assignments.items()):
            engine.corrupt(vertex, ram)
            hit.append(vertex)
        return hit

    def _garbage(self):
        choice = self.rng.randrange(4)
        if choice == 0:
            return self.rng.randrange(10 ** 9)
        if choice == 1:
            return -self.rng.randrange(1, 10 ** 6)
        if choice == 2:
            return ("junk", self.rng.randrange(100))
        return None

    def churn_vertices(self, engine, crashes=1, spawns=1):
        """Crash random present vertices and spawn random absent ones."""
        affected = []
        for _ in range(crashes):
            present = engine.graph.vertices()
            if not present:
                break
            v = self.rng.choice(present)
            engine.crash_vertex(v)
            affected.append(v)
        for _ in range(spawns):
            absent = [
                v
                for v in range(engine.graph.n_bound)
                if not engine.graph.is_present(v)
            ]
            if not absent:
                break
            v = self.rng.choice(absent)
            engine.spawn_vertex(v)
            # Attach somewhere legal so the new vertex participates.
            candidates = [
                u
                for u in engine.graph.vertices()
                if u != v
                and engine.graph.degree(u) < engine.graph.delta_bound
                and engine.graph.degree(v) < engine.graph.delta_bound
            ]
            self.rng.shuffle(candidates)
            for u in candidates[:2]:
                if engine.graph.degree(v) < engine.graph.delta_bound:
                    engine.add_edge(u, v)
            affected.append(v)
        return affected

    def churn_edges(self, engine, removals=1, additions=1):
        """Remove random edges and add random legal ones."""
        affected = []
        for _ in range(removals):
            edges = engine.graph.edges()
            if not edges:
                break
            u, v = self.rng.choice(edges)
            engine.remove_edge(u, v)
            affected.extend((u, v))
        for _ in range(additions):
            present = engine.graph.vertices()
            if len(present) < 2:
                break
            candidates = [
                (u, v)
                for u in present
                for v in present
                if u < v
                and not engine.graph.has_edge(u, v)
                and engine.graph.degree(u) < engine.graph.delta_bound
                and engine.graph.degree(v) < engine.graph.delta_bound
            ]
            if not candidates:
                break
            u, v = self.rng.choice(candidates)
            engine.add_edge(u, v)
            affected.extend((u, v))
        return affected


class TargetedAttacks:
    """Hand-crafted worst-case attack patterns (deterministic).

    These target the algorithms' specific weak points rather than random
    state: color theft creates guaranteed conflicts; reset storms force the
    full interval descent; chain attacks try to build long dependency
    cascades (they cannot — adjustment radii are constant — which is exactly
    what the tests assert).
    """

    @staticmethod
    def steal_colors_along_path(engine, path_vertices):
        """Each vertex on the path copies its successor's RAM."""
        hit = []
        for a, b in zip(path_vertices, path_vertices[1:]):
            if engine.graph.is_present(a) and engine.graph.is_present(b):
                engine.corrupt(a, engine.rams[b])
                hit.append(a)
        return hit

    @staticmethod
    def clone_everything(engine, source=None):
        """Overwrite every RAM with one vertex's RAM — maximal symmetry."""
        vertices = engine.graph.vertices()
        if not vertices:
            return []
        if source is None:
            source = vertices[0]
        value = engine.rams[source]
        for v in vertices:
            engine.corrupt(v, value)
        return list(vertices)

    @staticmethod
    def descent_interruption(engine, victims, rounds_between=1):
        """Re-corrupt the same victims every few rounds mid-descent."""
        for _ in range(3):
            for v in victims:
                if engine.graph.is_present(v):
                    engine.corrupt(v, ("interrupted",))
            for _ in range(rounds_between):
                engine.step()
        return list(victims)

    @staticmethod
    def isolate_and_reconnect(engine, vertex):
        """Drop all of a vertex's links, then wire it back elsewhere."""
        graph = engine.graph
        if not graph.is_present(vertex):
            return []
        old_neighbors = list(graph.neighbors(vertex))
        for u in old_neighbors:
            engine.remove_edge(vertex, u)
        candidates = [
            u
            for u in graph.vertices()
            if u != vertex
            and not graph.has_edge(vertex, u)
            and graph.degree(u) < graph.delta_bound
        ]
        for u in candidates[: graph.delta_bound]:
            if graph.degree(vertex) < graph.delta_bound:
                engine.add_edge(vertex, u)
        return [vertex] + old_neighbors
