"""Fully-dynamic self-stabilizing O(Delta)-coloring (Section 4.1, Lemma 4.2).

The RAM of a vertex is a single color in the interval plan's global range.
Every round, Procedure Self-Stabilizing-Coloring runs:

1. **Check-Error** — a color that is invalid (corrupted beyond the range) or
   equal to a neighbor's color resets to the vertex's ID slot in ``I_r``;
2. otherwise the vertex descends: Mod-Linial for ``I_j`` with ``j >= 2``,
   Excl-Linial with the forbidden set ``S'`` (all possible next colors of
   ``I_0`` neighbors — rotate and finalize, two per neighbor) for ``I_1``,
   and the uniform AG step inside ``I_0``.

Once faults stop: conflicting vertices reset in one round; colors then drain
down the intervals in ``r = log* n + O(1)`` rounds; and the AG core
finalizes everyone within ``Q = O(Delta)`` more rounds (Lemma 4.2's
``O(Delta + log* n)`` stabilization).  Only vertices adjacent to a fault can
ever detect an error, and finalized AG colors never move, so the adjustment
radius is 1 (Theorem 4.3's argument).
"""

from repro.linial.core import linial_next_color
from repro.selfstab.engine import SelfStabAlgorithm
from repro.selfstab.kernels import (
    ColorBatchOps,
    apply_upper_descent,
    batch_levels,
    masked_point_search,
)
from repro.selfstab.plan import IntervalPlan

__all__ = ["SelfStabColoring"]


class SelfStabColoring(ColorBatchOps, SelfStabAlgorithm):
    """Self-stabilizing proper ``Q``-coloring, ``Q = O(Delta)`` prime."""

    name = "selfstab-coloring"

    def __init__(self, n_bound, delta_bound):
        super().__init__(n_bound, delta_bound)
        # The AG core field Q doubles as the landing field: it needs
        # Q >= 2 * Delta + 1 for AG's two-conflicts-per-window argument and
        # Q >= 4 * Delta + 1 for the landing step (2*Delta agreements +
        # 2*Delta forbidden colors); the plan helper enforces both.
        q = IntervalPlan.landing_field_for(
            delta_bound, self._i1_size(n_bound, delta_bound), 2 * delta_bound + 1
        )
        self.q = q
        self.plan = IntervalPlan(
            n_bound,
            delta_bound,
            core_size=q * q,
            landing_q=q,
            landing_points=q,
        )

    @staticmethod
    def _i1_size(n_bound, delta_bound):
        from repro.linial.plan import linial_plan

        iterations = linial_plan(max(2, n_bound), delta_bound)
        return iterations[-1].out_palette if iterations else max(2, n_bound)

    # -- SelfStabAlgorithm interface ----------------------------------------------

    def fresh_ram(self, vertex):
        return self.plan.reset_color(vertex)

    def visible(self, vertex, ram):
        return ram

    def transition(self, vertex, ram, neighbor_visibles):
        plan = self.plan
        color = ram
        level = plan.level_of(color)
        # Check-Error: invalid or conflicting colors reset to the ID slot.
        if level is None or any(color == other for other in neighbor_visibles):
            return plan.reset_color(vertex)

        local = color - plan.offsets[level]
        valid_neighbors = [
            (plan.level_of(c), c) for c in neighbor_visibles
        ]
        if level >= 2:
            iteration = plan.descent_iteration(level)
            same_level = [
                c - plan.offsets[level]
                for lv, c in valid_neighbors
                if lv == level
            ]
            new_local = linial_next_color(
                local, same_level, iteration.q, iteration.degree
            )
            return plan.to_global(level - 1, new_local)
        if level == 1:
            same_level = [
                c - plan.offsets[1] for lv, c in valid_neighbors if lv == 1
            ]
            forbidden = set()
            for lv, c in valid_neighbors:
                if lv == 0:
                    forbidden.update(self._core_candidates(c - plan.offsets[0]))
            new_local = linial_next_color(
                local, same_level, self.q, 2, forbidden=frozenset(forbidden)
            )
            return plan.to_global(0, new_local)
        # level == 0: the uniform AG step.
        core_neighbors = [
            c - plan.offsets[0] for lv, c in valid_neighbors if lv == 0
        ]
        return plan.to_global(0, self._ag_step(local, core_neighbors))

    def _ag_step(self, local, core_neighbors):
        q = self.q
        a, b = divmod(local, q)
        conflict = any(nb % q == b for nb in core_neighbors)
        if conflict:
            return a * q + (b + a) % q
        return b  # <0, b>

    def _core_candidates(self, local):
        """The <= 2 colors an I_0 neighbor may hold next round (the set S')."""
        q = self.q
        a, b = divmod(local, q)
        return (a * q + (b + a) % q, b)

    # -- batch protocol (see repro.selfstab.fast_engine) -------------------------
    #
    # One int64 column per vertex holding the global color.  Check-Error is a
    # CSR equality scatter; each interval's Mod-Linial descent is a masked
    # point search over a base-q digit matrix (the LinialColoring kernel
    # shape); the landing step adds the Excl-Linial forbidden scatter over
    # precomputed rotate/finalize candidates of I_0 neighbors; the AG core is
    # pure elementwise arithmetic.  All rules are existence-based, so the
    # kernel is identical in LOCAL and SET-LOCAL.

    def _np_offsets(self, np):
        arr = self.__dict__.get("_offsets_arr")
        if arr is None:
            arr = np.asarray(self.plan.offsets, dtype=np.int64)
            self._offsets_arr = arr
        return arr

    def transition_batch_colors(self, colors, ctx):
        """Vectorized ``transition`` over the whole color column."""
        np, csr = ctx.np, ctx.csr
        plan, q = self.plan, self.q
        offsets = plan.offsets
        levels = batch_levels(colors, plan, self._np_offsets(np), np)
        new = np.empty(colors.shape[0], dtype=np.int64)

        # Check-Error: invalid or conflicting colors reset to the ID slot.
        conflict = csr.any_per_vertex(csr.gather(colors) == csr.owner_values(colors))
        reset = (levels < 0) | conflict
        if bool(reset.any()):
            new[reset] = offsets[plan.levels - 1] + ctx.vertices[reset]
        active = ~reset
        slot_levels = levels[csr.indices]

        apply_upper_descent(new, colors, levels, slot_levels, active, plan, ctx)

        mask1 = active & (levels == 1)
        if bool(mask1.any()):
            self._batch_land(new, colors, mask1, slot_levels, ctx)

        mask0 = active & (levels == 0)
        if bool(mask0.any()):
            # The uniform AG step, elementwise.  offsets[0] == 0, so the
            # core-local value is the color itself.
            a, b = colors // q, colors % q
            smask = mask0[csr.rows] & (slot_levels == 0)
            owner_rows = csr.rows[smask]
            hit = colors[csr.indices[smask]] % q == b[owner_rows]
            core_conflict = np.zeros(colors.shape[0], dtype=bool)
            core_conflict[owner_rows[hit]] = True
            stepped = np.where(core_conflict, a * q + (b + a) % q, b)
            new[mask0] = stepped[mask0]
        return new

    def _batch_land(self, new, colors, mask1, slot_levels, ctx):
        """Excl-Linial landing (I_1 -> I_0) with the forbidden set S'."""
        np, csr = ctx.np, ctx.csr
        plan, q = self.plan, self.q
        off1 = plan.offsets[1]
        sub = np.nonzero(mask1)[0]
        inv = np.empty(colors.shape[0], dtype=np.int64)
        inv[sub] = np.arange(sub.size, dtype=np.int64)
        locals_ = colors[sub] - off1

        smask = mask1[csr.rows] & (slot_levels == 1)
        owner_rows = csr.rows[smask]
        nbr_locals = colors[csr.indices[smask]] - off1
        keep = nbr_locals != colors[owner_rows] - off1

        # Rotate/finalize candidates of each I_0 neighbor (the set S').
        cmask = mask1[csr.rows] & (slot_levels == 0)
        core_rows = inv[csr.rows[cmask]]
        core_locals = colors[csr.indices[cmask]]  # offsets[0] == 0
        core_a, core_b = core_locals // q, core_locals % q
        rotate = core_a * q + (core_b + core_a) % q
        finalize = core_b

        def forbidden(cand, pending):
            hit = np.zeros(sub.size, dtype=bool)
            sel = pending[core_rows]
            rows = core_rows[sel]
            if rows.size:
                match = (rotate[sel] == cand[rows]) | (finalize[sel] == cand[rows])
                hit[rows[match]] = True
            return hit

        result = masked_point_search(
            locals_,
            q,
            2,
            q,
            inv[owner_rows[keep]],
            nbr_locals[keep],
            lambda x, values: x * q + values,
            forbidden,
            np,
        )
        if result is None:
            ctx.replay()
        new[sub] = plan.offsets[0] + result

    def is_legal(self, graph, rams):
        """Proper coloring with every color finalized in the AG core."""
        offset = self.plan.offsets[0]
        for v in graph.vertices():
            color = rams.get(v)
            if self.plan.level_of(color) != 0:
                return False
            if (color - offset) // self.q != 0:  # not finalized
                return False
        for v in graph.vertices():
            for u in graph.neighbors(v):
                if rams[u] == rams[v]:
                    return False
        return True

    def batch_is_legal(self, state, csr, np):
        """Vectorized :meth:`is_legal` over canonical columns.

        Finalized core states are exactly ``offset <= c < offset + q``
        (level 0 and ``a == 0``), so the scalar predicate collapses to a
        range check plus edge-wise properness.
        """
        (colors,) = state
        local = colors - self.plan.offsets[0]
        if not bool(((local >= 0) & (local < self.q)).all()):
            return False
        return not bool((colors[csr.edge_u] == colors[csr.edge_v]).any())

    def final_colors(self, graph, rams):
        """Extract the ``[0, Q)`` palette colors from a legal state."""
        offset = self.plan.offsets[0]
        return {v: (rams[v] - offset) % self.q for v in graph.vertices()}

    def stabilization_bound(self):
        return self.plan.levels + 3 * self.q + 16
