"""Shared NumPy kernels for the batch self-stabilization engine.

The self-stabilizing algorithms are *uniform* per-round local rules over the
interval plan: classify every (possibly corrupted) color, reset conflicts,
run one Mod-/Excl-Linial descent per interval, and step the core machine.
Each of those pieces is a data-parallel map over the 1-hop neighborhood, so
a whole round becomes a handful of array operations over a
:class:`~repro.runtime.csr.CSRAdjacency` view.

Encoding.  RAM values are arbitrary Python objects (the adversary writes
garbage), but *canonical* states — what the algorithms themselves produce —
are plain machine-sized ints (or ``(int, status)`` pairs for the MIS).  The
batch state stores every color as one ``int64`` column:

* plain ints keep their exact value (negative or out-of-range garbage
  included — equality and ``<`` comparisons must match the scalar path);
* bools store their int value (``True == 1`` for every rule the algorithms
  apply) and are tracked as payload-noncanonical so the CONGEST meter still
  charges the scalar 1 bit;
* non-int garbage maps to a sentinel below every representable color, which
  classifies as invalid and equals nothing valid — exactly the scalar
  behavior (two distinct garbage values colliding on the sentinel is
  unobservable: no rule ever compares two *neighbor* values to each other);
* ints too large for the sentinel-safe ``int64`` range are *exotic*:
  ``batch_encode`` refuses and the engine runs that round through the
  inherited scalar step (bit-for-bit parity for free).

Every rule here is existence/forall-based over the neighbor multiset, so
one kernel serves both the LOCAL and SET-LOCAL visibility models.
"""

from repro.mathutil.gf import batch_eval_points, batch_poly_coeffs

__all__ = [
    "BatchContext",
    "ColorBatchOps",
    "replay_scalar_round",
    "masked_point_search",
    "batch_levels",
    "apply_upper_descent",
    "SENTINEL",
]

#: Stored for non-int garbage: below every valid color, equal to nothing.
SENTINEL = -(1 << 62)

#: Plain ints beyond this magnitude are "exotic" and force a scalar round.
_CANON_MAX = 1 << 61

# Evaluation points are processed in small blocks (see LinialColoring):
# almost every vertex succeeds within the first few points.
_POINT_BLOCK = 16


def replay_scalar_round(algorithm, raws, csr, vertices, set_visibility):
    """Re-run one round through the scalar ``transition`` in vertex order.

    Batch kernels call this when no conflict-free point exists for some
    vertex: replaying raises the scalar path's exact exception, from the
    same vertex, with the same message.
    """
    visible = [algorithm.visible(v, raws[i]) for i, v in enumerate(vertices)]
    indptr = csr.indptr.tolist()
    indices = csr.indices.tolist()
    for i, v in enumerate(vertices):
        view = tuple(visible[j] for j in indices[indptr[i]:indptr[i + 1]])
        if set_visibility:
            view = frozenset(view)
        algorithm.transition(v, raws[i], view)


class BatchContext:
    """Everything a ``transition_batch`` kernel needs for one round."""

    __slots__ = ("np", "csr", "vertices", "set_visibility", "algorithm", "raw_values")

    def __init__(self, np, csr, vertices, set_visibility, algorithm, raw_values):
        self.np = np
        self.csr = csr
        self.vertices = vertices  # int64 array: compact index -> original id
        self.set_visibility = set_visibility
        self.algorithm = algorithm
        self.raw_values = raw_values  # lazy: the scalar RAM list for replay

    def replay(self):
        """Replay through the scalar path to raise its exact error."""
        raws = self.raw_values()
        replay_scalar_round(
            self.algorithm,
            raws,
            self.csr,
            self.vertices.tolist(),
            self.set_visibility,
        )
        raise AssertionError(
            "batch self-stab kernel rejected a round the scalar transition accepts"
        )


def batch_levels(colors, plan, offsets_arr, np):
    """Interval index per color column entry; -1 for invalid values.

    Mirrors ``IntervalPlan.level_of``: any int64 value outside
    ``[0, total_size)`` (garbage, sentinel) classifies as invalid.
    """
    valid = (colors >= 0) & (colors < plan.total_size)
    idx = np.searchsorted(offsets_arr, colors, side="right") - 1
    return np.where(valid, idx, -1)


def masked_point_search(locals_, q, degree, points, nbr_rows, nbr_locals, encode, forbidden, np):
    """Smallest conflict-free evaluation point per vertex, vectorized.

    The batch analogue of ``linial_next_color`` / ``_land``: encode each
    vertex's local color as a degree-``degree`` polynomial over GF(q),
    evaluate candidate points in blocks, and pick per vertex the smallest
    ``x`` whose value differs from every same-interval neighbor polynomial
    and whose encoded candidate is not forbidden.

    ``nbr_rows``/``nbr_locals`` list the same-interval neighbor slots
    (positions into ``locals_`` / their local colors), pre-filtered to drop
    neighbors holding the *same* local color — the scalar path skips its own
    polynomial, and an unskipped copy would conflict at every point.
    Duplicates are harmless (existence-only), so LOCAL == SET-LOCAL.

    ``encode(x, values)`` maps a point and its evaluations to candidate
    local colors; ``forbidden(cand, pending)`` (or None) marks candidates the
    Excl-Linial forbidden set rules out.  Returns the per-vertex candidate
    array, or ``None`` if some vertex exhausts all points (the caller then
    replays the round through the scalar path for its exact error).
    """
    s = locals_.shape[0]
    out = np.empty(s, dtype=np.int64)
    if s == 0:
        return out
    coeffs = batch_poly_coeffs(locals_, degree, q)
    have_nb = nbr_locals.size > 0
    nb_coeffs = batch_poly_coeffs(nbr_locals, degree, q) if have_nb else None
    pending = np.ones(s, dtype=bool)
    for first in range(0, points, _POINT_BLOCK):
        xs = np.arange(first, min(first + _POINT_BLOCK, points), dtype=np.int64)
        own_vals = batch_eval_points(coeffs, xs, q)
        for j in range(xs.size):
            x = int(xs[j])
            column = own_vals[:, j]
            conflict = np.zeros(s, dtype=bool)
            if have_nb:
                # Neighbor polynomials are evaluated lazily, per point, on
                # the still-pending slots only: pending collapses after the
                # first point or two, so pre-evaluating whole blocks over
                # all O(m) slots would dominate the round.
                sel = pending[nbr_rows]
                rows = nbr_rows[sel]
                if rows.size:
                    sub = nb_coeffs if rows.size == nbr_rows.size else nb_coeffs[sel]
                    vals = sub[:, -1].copy()
                    for k in range(sub.shape[1] - 2, -1, -1):
                        vals *= x
                        vals += sub[:, k]
                        vals %= q
                    agree = vals == column[rows]
                    conflict[rows[agree]] = True
            cand = encode(x, column)
            if forbidden is not None:
                conflict |= forbidden(cand, pending)
            free = pending & ~conflict
            out[free] = cand[free]
            pending &= conflict
            if not bool(pending.any()):
                return out
    return None


def apply_upper_descent(new, colors, levels, slot_levels, active, plan, ctx):
    """Mod-Linial descent for every active vertex at level >= 2.

    Shared verbatim by the plain and exact colorings (their transitions only
    differ at levels 1 and 0).  Writes results into ``new`` in place.
    """
    np, csr = ctx.np, ctx.csr
    offsets = plan.offsets
    upper = active & (levels >= 2)
    if not bool(upper.any()):
        return
    for level in np.unique(levels[upper]).tolist():
        mask = active & (levels == level)
        sub = np.nonzero(mask)[0]
        iteration = plan.descent_iteration(level)
        off = offsets[level]
        locals_ = colors[sub] - off
        inv = np.empty(colors.shape[0], dtype=np.int64)
        inv[sub] = np.arange(sub.size, dtype=np.int64)
        smask = mask[csr.rows] & (slot_levels == level)
        owner_rows = csr.rows[smask]
        nbr_locals = colors[csr.indices[smask]] - off
        keep = nbr_locals != colors[owner_rows] - off
        q = iteration.q
        result = masked_point_search(
            locals_,
            q,
            iteration.degree,
            q,
            inv[owner_rows[keep]],
            nbr_locals[keep],
            lambda x, values: x * q + values,
            None,
            np,
        )
        if result is None:
            ctx.replay()
        new[sub] = offsets[level - 1] + result


class ColorBatchOps:
    """Batch protocol mixin for algorithms whose RAM is one global color.

    Concrete classes provide ``transition_batch_colors(colors, ctx)``; this
    mixin supplies the encode/decode/payload plumbing the batch engine uses.
    Assumes ``visible`` is the identity (true for every algorithm here).
    """

    batch_transitions = True

    def batch_encode(self, raws, np):
        """Columns for a RAM list: ``((values,), noncanon)`` or None (exotic)."""
        values = np.empty(len(raws), dtype=np.int64)
        noncanon = {}
        for i, raw in enumerate(raws):
            if isinstance(raw, bool):
                values[i] = int(raw)
                noncanon[i] = raw
            elif isinstance(raw, int):
                if not -_CANON_MAX < raw < _CANON_MAX:
                    return None
                values[i] = raw
            else:
                values[i] = SENTINEL
                noncanon[i] = raw
        return (values,), noncanon

    def batch_encode_one(self, raw):
        """Column values for one RAM: ``(cols, canonical)`` or None (exotic)."""
        if isinstance(raw, bool):
            return (int(raw),), False
        if isinstance(raw, int):
            if not -_CANON_MAX < raw < _CANON_MAX:
                return None
            return (raw,), True
        return (SENTINEL,), False

    def batch_decode(self, state):
        """The canonical (post-step) state as the scalar RAM list."""
        return state[0].tolist()

    def batch_payload_max(self, state, include, np):
        """Max broadcast payload bits over the included canonical vertices."""
        values = state[0][include]
        if values.size == 0:
            return 0
        return max(1, int(np.abs(values).max()).bit_length() + 1)

    def transition_batch(self, state, ctx):
        """One synchronous round: ``(new_state, changed_mask)``."""
        (colors,) = state
        new_colors = self.transition_batch_colors(colors, ctx)
        return (new_colors,), colors != new_colors
