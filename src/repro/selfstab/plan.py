"""The Mod-Linial interval plan (Section 4.1).

Colors live in one global range partitioned into disjoint intervals
``I_0, I_1, ..., I_r``:

* ``I_r`` holds the initial/reset colors (one per ID, size ``n_bound``);
* ``I_j`` for ``2 <= j < r`` holds the palette of a Linial iteration;
  a vertex there applies Mod-Linial and lands in ``I_{j-1}``;
* ``I_1`` is the last Linial palette; leaving it requires Excl-Linial with a
  forbidden set ``S'`` — the possible next colors of neighbors already in
  ``I_0`` — so arrivals never collide with the core's evolution;
* ``I_0`` is the core where the AG machinery runs forever.

The plan is derived purely from ``(n_bound, delta_bound)`` — ROM contents —
so every vertex reconstructs it identically with no communication, and a
vertex can classify any (possibly corrupted) color value into its interval,
or reject it as invalid, locally.

Two cores exist: the plain AG core (``O(Delta)`` colors, Lemma 4.2) and the
extended hybrid core (exactly ``Delta + 1`` colors, Theorem 7.5); they share
this plan, differing in the ``I_0`` size and the landing rule.
"""

from functools import lru_cache

from repro.linial.plan import integer_root_ceiling, linial_plan
from repro.mathutil.primes import next_prime_at_least

__all__ = ["IntervalPlan"]

_LANDING_DEGREE = 2


@lru_cache(maxsize=None)
def _interval_layout(n_bound, delta_bound, core_size):
    """Memoized interval layout: ``(iterations, sizes, offsets)`` as tuples.

    Every selfstab algorithm (and every engine the benchmarks construct)
    rebuilds its plan from the same ``(n_bound, delta_bound)`` ROM pair, and
    the Linial cascade behind it is the expensive part (prime searches).
    Mirrors the ``linial_plan`` memoization: the cache holds immutable
    tuples; :class:`IntervalPlan` copies them into fresh lists so public
    callers can never alias or mutate cached state.
    """
    iterations = linial_plan(max(2, n_bound), delta_bound)
    sizes = [core_size]  # I_0
    if iterations:
        sizes.append(iterations[-1].out_palette)  # I_1
        for it in reversed(iterations):
            sizes.append(it.in_palette)  # I_2 .. I_r (I_r = ID space)
    else:
        sizes.append(max(2, n_bound))  # I_1 = ID space directly
    offsets = []
    total = 0
    for size in sizes:
        offsets.append(total)
        total += size
    return tuple(iterations), tuple(sizes), tuple(offsets)


@lru_cache(maxsize=None)
def _landing_field(delta_bound, i1_size, extra_floor):
    d = _LANDING_DEGREE
    floor = max(
        d * delta_bound + 2 * delta_bound + 2,
        integer_root_ceiling(max(2, i1_size), d + 1),
        extra_floor,
        2,
    )
    return next_prime_at_least(floor)


class IntervalPlan:
    """Interval layout plus the per-level Linial parameters.

    Parameters
    ----------
    n_bound, delta_bound:
        The ROM bounds.
    core_size:
        Size of ``I_0`` (the AG pair space or the hybrid state space).
    landing_q:
        Field size of the Excl-Linial landing step (level 1 -> 0); must
        satisfy ``landing_q^(d+1) >= size(I_1)`` and leave room for
        ``d * Delta`` agreements plus ``2 * Delta`` forbidden colors.
    landing_points:
        How many evaluation points the landing step may use (the hybrid core
        reserves the point ``x = landing_q - 1`` so that ``b = x + 1`` stays
        in ``[1, landing_q - 1]``).
    """

    def __init__(self, n_bound, delta_bound, core_size, landing_q, landing_points):
        self.n_bound = n_bound
        self.delta_bound = delta_bound
        self.core_size = core_size
        self.landing_q = landing_q
        self.landing_points = landing_points

        # Standard Linial cascade from the ID space down to its fixpoint,
        # which becomes I_1.  The layout is memoized (see _interval_layout);
        # copy it into fresh lists so callers can never mutate cached state.
        iterations, sizes, offsets = _interval_layout(
            n_bound, delta_bound, core_size
        )
        self.iterations = list(iterations)
        self.sizes = list(sizes)
        self.offsets = list(offsets)
        self.total_size = offsets[-1] + sizes[-1] if sizes else 0
        self.levels = len(sizes)  # r + 1

        d = _LANDING_DEGREE
        if landing_q ** (d + 1) < self.sizes[1]:
            raise ValueError(
                "landing field %d^3 cannot encode I_1 of size %d"
                % (landing_q, self.sizes[1])
            )
        if landing_points < d * delta_bound + 2 * delta_bound + 1:
            raise ValueError(
                "landing step needs %d points, only %d available"
                % (d * delta_bound + 2 * delta_bound + 1, landing_points)
            )

    # -- classification ----------------------------------------------------------

    def level_of(self, color):
        """Interval index of a color, or None for invalid values."""
        if not isinstance(color, int) or not (0 <= color < self.total_size):
            return None
        for j in range(self.levels - 1, -1, -1):
            if color >= self.offsets[j]:
                return j
        return None

    def to_local(self, color):
        """Split a valid global color into ``(level, local color)``."""
        level = self.level_of(color)
        return level, color - self.offsets[level]

    def to_global(self, level, local):
        """Compose a global color from an interval index and a local color."""
        if not (0 <= local < self.sizes[level]):
            raise ValueError(
                "local color %d out of range for level %d (size %d)"
                % (local, level, self.sizes[level])
            )
        return self.offsets[level] + local

    def reset_color(self, vertex):
        """The initial-state color of a vertex: its ID slot in I_r."""
        return self.offsets[self.levels - 1] + vertex

    def descent_iteration(self, level):
        """The Linial iteration mapping interval ``level`` to ``level - 1``.

        Defined for ``2 <= level <= r``; level 1 uses the landing step.
        """
        if not (2 <= level <= self.levels - 1):
            raise ValueError("no descent iteration for level %d" % level)
        # iterations[k] maps level (r - k) -> (r - k - 1).
        k = (self.levels - 1) - level
        return self.iterations[k]

    @classmethod
    def landing_field_for(cls, delta_bound, i1_size, extra_floor=0):
        """Smallest prime with enough points and encoding capacity (memoized)."""
        return _landing_field(delta_bound, i1_size, extra_floor)

    def __repr__(self):
        return "IntervalPlan(levels=%d, total=%d, core=%d, landing_q=%d)" % (
            self.levels,
            self.total_size,
            self.core_size,
            self.landing_q,
        )
