"""Batch self-stabilization engine: whole rounds as NumPy array ops.

:class:`BatchSelfStabEngine` is a drop-in :class:`~repro.selfstab.engine.
SelfStabEngine` that keeps the RAM of every present vertex in parallel
``int64`` columns and runs each synchronous round through the algorithm's
``transition_batch`` kernel over a compact CSR view of the dynamic graph.
Parity with the scalar engine is bit-for-bit: identical stabilization round
counts, changed/touched sets, adjustment radii, CONGEST payload meters and
``NotStabilizedError`` messages (kernels replay failing rounds through the
scalar ``transition`` to surface its exact exception — the
``scalar_replay_round`` pattern of the one-shot pipeline).

State lives on two clocks:

* the **epoch** — the CSR snapshot plus the present-vertex index map —
  survives until a topology event (crash/spawn/rewire) invalidates it;
* the **columns** — the encoded RAM state — survive across rounds and
  adversary corruptions (``corrupt`` writes the encoded value into the
  columns in place; see ``FaultCampaign``), and are re-encoded from the
  dict only when the epoch changes or a scalar-fallback round ran.

The ``rams`` dict stays the source of truth for every scalar consumer
(``is_legal``, ``final_colors``, direct inspection): it is lazily re-synced
from the columns on first access after a batch round.

Algorithms opt in via ``batch_transitions``; for anything else (e.g. the
constant-memory variants) every round transparently falls back to the
inherited scalar ``step`` — as it does when NumPy is unavailable or the
adversary planted an int too large for the columns.
"""

from repro.obs import core as obs
from repro.runtime.csr import CSRAdjacency, numpy_available, numpy_or_none
from repro.selfstab.engine import SelfStabEngine
from repro.selfstab.kernels import BatchContext

__all__ = [
    "BatchSelfStabEngine",
    "batch_supported",
    "BACKENDS",
]

BACKENDS = ("auto", "batch", "reference")


def batch_supported(algorithm):
    """True iff ``algorithm`` implements the batch transition protocol."""
    return bool(getattr(algorithm, "batch_transitions", False))


class BatchSelfStabEngine(SelfStabEngine):
    """Drop-in :class:`SelfStabEngine` that vectorizes supporting algorithms."""

    # Class-level defaults so the base __init__ (which assigns the `rams`
    # property) runs before instance state exists.
    _dict_stale = False
    _state = None
    _noncanon = None
    _epoch = None
    _pending_touched = None

    def __init__(self, graph, algorithm, set_visibility=False, native=None):
        super().__init__(graph, algorithm, set_visibility=set_visibility)
        self._noncanon = {}
        if native is None:
            from repro.runtime.native import native_default

            native = native_default()
        # ``native=True`` routes covered rounds through the Numba kernels of
        # :mod:`repro.runtime.native`; uncovered algorithms and rounds the
        # kernel declines (non-steady states) keep the NumPy path, and both
        # degrade to it silently when Numba is absent — bit-identical output
        # along the whole numba -> batch -> reference order.
        self.native = bool(native)

    # -- dict <-> column synchronization ----------------------------------------

    @property
    def rams(self):
        """The scalar RAM dict, re-synced from the columns on demand."""
        if self._dict_stale:
            self._sync_dict()
        return self._rams

    @rams.setter
    def rams(self, mapping):
        self._rams = mapping
        self._dict_stale = False

    def _sync_dict(self):
        self._dict_stale = False
        raws = self.algorithm.batch_decode(self._state)
        rams = self._rams
        for vertex, raw in zip(self._epoch[2], raws):
            rams[vertex] = raw

    def _drop_epoch(self):
        self._merge_touched()
        self._epoch = None
        self._state = None
        self._noncanon = {}
        self._pending_touched = None

    # -- adversary API: array-backed corruption, epoch invalidation --------------

    def corrupt(self, vertex, ram):
        """Overwrite a vertex's RAM — in the dict and, in place, the columns."""
        if self._dict_stale:
            self._sync_dict()
        super().corrupt(vertex, ram)
        if self._state is None:
            return
        encoded = self.algorithm.batch_encode_one(ram)
        if encoded is None:
            # Exotic value (int too large for the columns): re-encode at the
            # next step, which will route the round through the scalar path.
            self._state = None
            self._noncanon = {}
            return
        columns, canonical = encoded
        index = self._epoch[3][vertex]
        for array, value in zip(self._state, columns):
            array[index] = value
        if canonical:
            self._noncanon.pop(index, None)
        else:
            self._noncanon[index] = ram

    def spawn_vertex(self, vertex):
        if self._dict_stale:
            self._sync_dict()
        self._drop_epoch()
        super().spawn_vertex(vertex)

    def crash_vertex(self, vertex):
        if self._dict_stale:
            self._sync_dict()
        self._drop_epoch()
        super().crash_vertex(vertex)

    def add_edge(self, u, v):
        if self._dict_stale:
            self._sync_dict()
        self._drop_epoch()
        super().add_edge(u, v)

    def remove_edge(self, u, v):
        if self._dict_stale:
            self._sync_dict()
        self._drop_epoch()
        super().remove_edge(u, v)

    # -- execution ----------------------------------------------------------------

    def _prepare_batch(self):
        """Build/refresh the epoch + columns; returns numpy or None (scalar)."""
        if not batch_supported(self.algorithm):
            return None
        np = numpy_or_none()
        if np is None:
            return None
        if self._epoch is None:
            csr, verts_arr = CSRAdjacency.from_dynamic(self.graph)
            verts_list = verts_arr.tolist()
            index = {v: i for i, v in enumerate(verts_list)}
            self._epoch = (csr, verts_arr, verts_list, index)
            self._pending_touched = np.zeros(csr.n, dtype=bool)
            self._state = None
        if self._state is None:
            raws = [self._rams[v] for v in self._epoch[2]]
            encoded = self.algorithm.batch_encode(raws, np)
            if encoded is None:
                return None  # exotic RAM: scalar round, exact parity for free
            self._state, self._noncanon = encoded
        return np

    def step(self):
        """One fault-free synchronous round; returns the set of changed vertices."""
        np = self._prepare_batch()
        if np is None:
            return self._scalar_step()
        changed = self._batch_round(np)
        if not bool(changed.any()):
            return set()
        return set(self._epoch[1][changed].tolist())

    def is_legal(self):
        """Legality check, vectorized when the columns are live and canonical."""
        if self._state is not None and not self._noncanon and self._epoch is not None:
            fn = getattr(self.algorithm, "batch_is_legal", None)
            if fn is not None:
                np = numpy_or_none()
                if np is not None:
                    return bool(fn(self._state, self._epoch[0], np))
        return super().is_legal()

    def _scalar_step(self):
        tel = obs.active()
        if tel.enabled:
            # Same signal as the one-shot engine's fallback event: a batch
            # self-stab engine silently doing scalar rounds is a perf bug.
            tel.counter(
                "selfstab.fallback_scalar", algorithm=self.algorithm.name
            )
        if self._dict_stale:
            self._sync_dict()
        changed = SelfStabEngine.step(self)
        self._state = None
        self._noncanon = {}
        return changed

    def _batch_round(self, np):
        csr, verts_arr, verts_list, _ = self._epoch
        state = self._state
        noncanon = self._noncanon
        algorithm = self.algorithm
        # CONGEST meter, mirroring the scalar pre-transition payload scan.
        # Algorithms whose visible() is not the identity (rank-greedy
        # broadcasts an (id, color) pair) opt into receiving the original
        # vertex ids via ``batch_payload_wants_ids``.
        if csr.indices.size:
            include = csr.degrees > 0
            if noncanon:
                mask = np.zeros(csr.n, dtype=bool)
                mask[list(noncanon)] = True
                include = include & ~mask
                bits = self.max_message_bits
                for i, raw in noncanon.items():
                    if csr.degrees[i]:
                        bits = max(
                            bits,
                            self._payload_bits(algorithm.visible(verts_list[i], raw)),
                        )
                self.max_message_bits = bits
            if getattr(algorithm, "batch_payload_wants_ids", False):
                column_bits = algorithm.batch_payload_max(
                    state, include, np, ids=verts_arr
                )
            else:
                column_bits = algorithm.batch_payload_max(state, include, np)
            if column_bits > self.max_message_bits:
                self.max_message_bits = column_bits

        def raw_values():
            raws = algorithm.batch_decode(state)
            for i, raw in noncanon.items():
                raws[i] = raw
            return raws

        ctx = BatchContext(
            np, csr, verts_arr, self.set_visibility, algorithm, raw_values
        )
        new_state = None
        if self.native:
            from repro.runtime import native

            kernel = native.selfstab_kernel_for(algorithm)
            if kernel is not None:
                stepped = kernel(algorithm, state, ctx)
                if stepped is not None:
                    new_state, changed = stepped
                    tel = obs.active()
                    if tel.enabled:
                        tel.counter(
                            "selfstab.native_rounds", algorithm=algorithm.name
                        )
        if new_state is None:
            new_state, changed = algorithm.transition_batch(state, ctx)
        self._state = new_state
        self._noncanon = {}
        self.round_count += 1
        self._dict_stale = True
        self._pending_touched |= changed
        return changed

    # -- measurement ---------------------------------------------------------------

    def _merge_touched(self):
        pending = self._pending_touched
        if pending is not None and bool(pending.any()):
            self._touched.update(self._epoch[1][pending].tolist())
            pending[:] = False

    def reset_touched(self):
        super().reset_touched()
        if self._pending_touched is not None:
            self._pending_touched[:] = False

    @property
    def touched(self):
        self._merge_touched()
        return set(self._touched)

    def adjustment_radius(self, fault_sources):
        self._merge_touched()
        return super().adjustment_radius(fault_sources)
