"""Self-stabilizing maximal matching and edge coloring via line-graph simulation.

Section 4.2: each vertex simulates one virtual vertex per incident edge; the
endpoints keep the virtual state consistent (the higher-ID endpoint copies
the lower's copy), after which a self-stabilizing MIS on the line graph *is*
a maximal matching and a self-stabilizing vertex coloring of the line graph
*is* an edge coloring (Theorem 4.7).

:class:`LineGraphMirror` maintains the dynamic line graph: virtual vertex
``u * n_bound + v`` stands for edge ``(u, v)``, ``u < v``; the consistency
copy is instantaneous in the simulation (one extra round in a real network —
a constant the theorems absorb).  The wrappers re-sync the mirror after base
topology changes and delegate fault injection and quiescence measurement to
the underlying :class:`~repro.selfstab.engine.SelfStabEngine`.
"""

from repro.runtime.graph import DynamicGraph
from repro.selfstab.coloring import SelfStabColoring
from repro.selfstab.exact import SelfStabExactColoring
from repro.runtime.backends import resolve_backend
from repro.selfstab.mis import SelfStabMIS

__all__ = ["LineGraphMirror", "SelfStabMaximalMatching", "SelfStabEdgeColoring"]


class LineGraphMirror:
    """A DynamicGraph mirroring the line graph of a base DynamicGraph."""

    def __init__(self, base):
        self.base = base
        self.n_bound = base.n_bound * base.n_bound
        self.delta_bound = max(0, 2 * (base.delta_bound - 1))
        self.line = DynamicGraph(self.n_bound, self.delta_bound)

    def slot(self, u, v):
        """The virtual-vertex id of base edge ``(u, v)``."""
        a, b = (u, v) if u < v else (v, u)
        return a * self.base.n_bound + b

    def edge_of(self, slot):
        """The base edge a virtual vertex stands for."""
        return divmod(slot, self.base.n_bound)

    def desired_state(self):
        """The line graph the current base topology implies."""
        base_edges = self.base.edges()
        vertices = {self.slot(u, v) for u, v in base_edges}
        incident = {}
        for u, v in base_edges:
            s = self.slot(u, v)
            incident.setdefault(u, []).append(s)
            incident.setdefault(v, []).append(s)
        edges = set()
        for slots in incident.values():
            for i in range(len(slots)):
                for j in range(i + 1, len(slots)):
                    a, b = slots[i], slots[j]
                    edges.add((a, b) if a < b else (b, a))
        return vertices, edges

    def sync(self, engine):
        """Reconcile the mirror with the base topology through ``engine``.

        Uses the engine's fault API so RAM bookkeeping and touched-set
        tracking stay accurate.  Returns the set of affected virtual
        vertices.
        """
        desired_vertices, desired_edges = self.desired_state()
        current_vertices = set(self.line.vertices())
        current_edges = set(self.line.edges())
        affected = set()
        for s in current_vertices - desired_vertices:
            engine.crash_vertex(s)
            affected.add(s)
        for a, b in current_edges - desired_edges:
            if a in desired_vertices and b in desired_vertices:
                engine.remove_edge(a, b)
                affected.update((a, b))
        for s in desired_vertices - current_vertices:
            engine.spawn_vertex(s)
            affected.add(s)
        for a, b in desired_edges - current_edges:
            engine.add_edge(a, b)
            affected.update((a, b))
        return affected


class _LineProtocol:
    """Shared plumbing for the two line-graph wrappers.

    Models the paper's consistency rule explicitly: each endpoint holds a
    copy of the virtual vertex's state, and in every round "the endpoint
    with greater ID copies the state of the other endpoint" — i.e. the
    smaller endpoint's copy is authoritative.  A fault hitting the greater
    endpoint's copy is healed by the copy rule within the same round and
    never reaches the algorithm; a fault hitting the smaller endpoint's copy
    *is* the virtual vertex's new state.
    """

    def __init__(self, base, algorithm, backend="auto"):
        self.base = base
        self.mirror = LineGraphMirror(base)
        self.algorithm = algorithm
        self.engine = resolve_backend("selfstab", backend)(
            self.mirror.line, algorithm
        )
        # Pending desyncs of the greater endpoint's copy, healed next round.
        self._secondary_desyncs = {}
        self.sync_topology()

    def sync_topology(self):
        """Call after mutating the base graph."""
        return self.mirror.sync(self.engine)

    def _resolve_copies(self):
        """The consistency round: greater endpoints adopt the smaller's copy."""
        healed = list(self._secondary_desyncs)
        self._secondary_desyncs.clear()
        return healed

    def step(self):
        self._resolve_copies()
        return self.engine.step()

    def run_to_quiescence(self, max_rounds=None):
        self._resolve_copies()
        return self.engine.run_to_quiescence(max_rounds=max_rounds)

    def is_legal(self):
        """Legal requires algorithmic legality AND consistent copies."""
        return not self._secondary_desyncs and self.engine.is_legal()

    def corrupt_edge(self, u, v, ram):
        """Corrupt the *authoritative* (smaller-endpoint) copy of edge (u,v)."""
        self.engine.corrupt(self.mirror.slot(u, v), ram)

    def corrupt_edge_copy(self, u, v, holder, ram):
        """Corrupt one endpoint's copy of edge ``(u, v)``.

        ``holder`` selects whose copy: the smaller endpoint's copy is
        authoritative (equivalent to :meth:`corrupt_edge`); the greater
        endpoint's copy is healed by the consistency rule one round later
        without ever influencing the algorithm.
        """
        a, b = (u, v) if u < v else (v, u)
        if holder == a:
            self.corrupt_edge(u, v, ram)
        elif holder == b:
            self._secondary_desyncs[self.mirror.slot(u, v)] = ram
        else:
            raise ValueError("holder %r is not an endpoint of (%r, %r)" % (holder, u, v))


class SelfStabMaximalMatching(_LineProtocol):
    """Self-stabilizing maximal matching: MIS on the line graph.

    Stabilization ``O(Delta + log* n)`` (Theorem 4.7); adjustment radius 3 in
    the base graph (radius-2 MIS changes on the line graph reach one base hop
    further).
    """

    def __init__(self, base, backend="auto"):
        mirror_probe = LineGraphMirror(base)
        algorithm = SelfStabMIS(mirror_probe.n_bound, mirror_probe.delta_bound)
        super().__init__(base, algorithm, backend=backend)

    def matching(self):
        """The matched base edges of the current (legal) state."""
        members = self.algorithm.mis_members(self.mirror.line, self.engine.rams)
        return sorted(self.mirror.edge_of(s) for s in members)


class SelfStabEdgeColoring(_LineProtocol):
    """Self-stabilizing edge coloring: vertex coloring of the line graph.

    With ``exact=True`` uses the exact core: ``Delta_L + 1 <= 2 * Delta - 1``
    colors (Theorem 4.7 / 7.5); otherwise the AG core with ``O(Delta)``
    colors and a smaller constant round count.
    """

    def __init__(self, base, exact=True, constant_memory=False, backend="auto"):
        mirror_probe = LineGraphMirror(base)
        if constant_memory:
            from repro.selfstab.lowmem import (
                SelfStabColoringConstantMemory,
                SelfStabExactColoringConstantMemory,
            )

            factory = (
                SelfStabExactColoringConstantMemory
                if exact
                else SelfStabColoringConstantMemory
            )
        else:
            factory = SelfStabExactColoring if exact else SelfStabColoring
        algorithm = factory(mirror_probe.n_bound, mirror_probe.delta_bound)
        super().__init__(base, algorithm, backend=backend)

    def edge_colors(self):
        """``{(u, v): color}`` of the current (legal) state."""
        finals = self.algorithm.final_colors(self.mirror.line, self.engine.rams)
        return {self.mirror.edge_of(s): c for s, c in finals.items()}
