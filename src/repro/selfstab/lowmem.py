"""The O(1)-words self-stabilizing coloring (Section 1.2.1's memory claim).

"Finally, for each of these problems, there is a variant of our algorithm in
which vertices use just O(1) words of local memory."  The model grants every
vertex a re-readable read-only buffer per neighbor holding the current
incoming message; the transition below touches those buffers in streaming
passes only and keeps every live local value inside a metered
:class:`~repro.lowmem.workspace.Workspace`:

* Check-Error: one pass comparing each buffer to the own color;
* Mod-Linial descent: for each candidate point ``x``, re-stream the buffers,
  evaluating one same-interval neighbor polynomial at a time;
* the Excl-Linial landing: the candidate is additionally compared, buffer by
  buffer, against each ``I_0`` neighbor's *two* possible next colors,
  computed on the fly (never materializing the ``O(Delta)``-sized ``S'``);
* the AG core: own pair, one streamed neighbor, one conflict flag.

``transition`` provably returns bit-identical results to
:class:`~repro.selfstab.coloring.SelfStabColoring` (tested on random
states), so every stabilization/radius theorem transfers; the workspace
meter shows the peak stays a fixed handful of Theta(log n)-bit words.
"""

from repro.lowmem.workspace import Workspace, bits_for_range

from repro.selfstab.coloring import SelfStabColoring
from repro.selfstab.exact import SelfStabExactColoring
from repro.selfstab.mis import SelfStabMIS

__all__ = [
    "SelfStabColoringConstantMemory",
    "SelfStabExactColoringConstantMemory",
    "SelfStabMISConstantMemory",
]


class SelfStabColoringConstantMemory(SelfStabColoring):
    """Drop-in SelfStabColoring whose transition is workspace-metered."""

    name = "selfstab-coloring-o1-memory"
    # The point of this variant is the metered scalar transition: opting out
    # of the batch kernels keeps the workspace meter accurate.
    batch_transitions = False

    def __init__(self, n_bound, delta_bound, bit_limit=None):
        super().__init__(n_bound, delta_bound)
        self.workspace = Workspace(bit_limit=bit_limit)
        self._color_bits = bits_for_range(self.plan.total_size)

    @property
    def peak_words(self):
        """Peak workspace usage in Theta(log n_bound)-bit words."""
        word = bits_for_range(max(2, self.n_bound))
        return self.workspace.peak_words(word)

    # -- streaming helpers ---------------------------------------------------------

    def _eval_color_poly(self, color_local, x, q, degree):
        """Horner evaluation digit by digit, O(1) registers."""
        ws = self.workspace
        ws.put("acc", 0, bits_for_range(q))
        for position in range(degree, -1, -1):
            digit = (color_local // (q ** position)) % q
            ws.put(
                "acc", (ws.get("acc") * x + digit) % q, bits_for_range(q)
            )
        value = ws.get("acc")
        ws.free("acc")
        return value

    def _stream_levels(self, neighbor_visibles):
        """Yield (level, global color) per buffer; one live value at a time."""
        for color in neighbor_visibles:
            yield self.plan.level_of(color), color

    # -- the metered transition -----------------------------------------------------

    def transition(self, vertex, ram, neighbor_visibles):
        ws = self.workspace
        plan = self.plan
        color_bits = self._color_bits

        ws.put("color", ram, color_bits)
        level = plan.level_of(ram)
        error = level is None
        if not error:
            ws.put("flag", 0, 1)
            for _, other in self._stream_levels(neighbor_visibles):
                ws.put("buf", other, color_bits)
                if ws.get("buf") == ws.get("color"):
                    ws.put("flag", 1, 1)
                ws.free("buf")
            error = bool(ws.get("flag"))
            ws.free("flag")
        if error:
            ws.free_all()
            return plan.reset_color(vertex)

        local = ram - plan.offsets[level]
        ws.put("local", local, color_bits)

        if level >= 2:
            iteration = plan.descent_iteration(level)
            result = self._descend(
                vertex,
                level,
                local,
                neighbor_visibles,
                iteration.q,
                iteration.degree,
                with_core_forbidden=False,
            )
        elif level == 1:
            result = self._descend(
                vertex, 1, local, neighbor_visibles, self.q, 2,
                with_core_forbidden=True,
            )
        else:
            result = self._ag_core_step(local, neighbor_visibles)
        ws.free_all()
        return result

    def _descend(
        self, vertex, level, local, neighbor_visibles, q, degree, with_core_forbidden
    ):
        """Mod-/Excl-Linial with streamed neighbors and streamed S'."""
        ws = self.workspace
        plan = self.plan
        for x in range(q):
            ws.put("x", x, bits_for_range(q))
            ws.put("gx", self._eval_color_poly(local, x, q, degree), bits_for_range(q))
            candidate_local = x * q + ws.get("gx")
            ws.put("cand", candidate_local, self._color_bits)
            ok = True
            for nb_level, nb_color in self._stream_levels(neighbor_visibles):
                if nb_level == level:
                    nb_local = nb_color - plan.offsets[level]
                    if nb_local == local:
                        continue
                    ws.put("nval", self._eval_color_poly(nb_local, x, q, degree),
                           bits_for_range(q))
                    if ws.get("nval") == ws.get("gx"):
                        ok = False
                    ws.free("nval")
                elif with_core_forbidden and nb_level == 0:
                    # The neighbor's two possible next core colors, on the fly.
                    nb_local = nb_color - plan.offsets[0]
                    for option in self._core_candidates(nb_local):
                        ws.put("opt", option, self._color_bits)
                        if ws.get("opt") == ws.get("cand"):
                            ok = False
                        ws.free("opt")
                if not ok:
                    break
            if ok:
                result = plan.to_global(level - 1, candidate_local)
                return result
            ws.free("cand")
            ws.free("gx")
            ws.free("x")
        raise AssertionError("no landing point — the plan guarantees one")

    def _ag_core_step(self, local, neighbor_visibles):
        ws = self.workspace
        plan = self.plan
        q = self.q
        a, b = divmod(local, q)
        ws.put("a", a, bits_for_range(q))
        ws.put("b", b, bits_for_range(q))
        ws.put("conflict", 0, 1)
        for nb_level, nb_color in self._stream_levels(neighbor_visibles):
            if nb_level != 0:
                continue
            ws.put("nb", (nb_color - plan.offsets[0]) % q, bits_for_range(q))
            if ws.get("nb") == ws.get("b"):
                ws.put("conflict", 1, 1)
            ws.free("nb")
        if ws.get("conflict"):
            return plan.to_global(0, a * q + (b + a) % q)
        return plan.to_global(0, b)


class SelfStabExactColoringConstantMemory(SelfStabExactColoring):
    """O(1)-words variant of the exact (Delta+1) self-stabilizing coloring.

    Same streaming discipline as :class:`SelfStabColoringConstantMemory`;
    the hybrid core keeps the decoded own state plus one streamed neighbor
    state and two flags, and the landing step compares each candidate
    against each core neighbor's (at most two) next states on the fly.
    Bit-identical to :class:`~repro.selfstab.exact.SelfStabExactColoring`.
    """

    name = "selfstab-exact-coloring-o1-memory"
    batch_transitions = False

    def __init__(self, n_bound, delta_bound, bit_limit=None):
        super().__init__(n_bound, delta_bound)
        self.workspace = Workspace(bit_limit=bit_limit)
        self._color_bits = bits_for_range(self.plan.total_size)

    @property
    def peak_words(self):
        """Peak workspace usage in Theta(log n_bound)-bit words."""
        word = bits_for_range(max(2, self.n_bound))
        return self.workspace.peak_words(word)

    def transition(self, vertex, ram, neighbor_visibles):
        """Metered streaming transition; bit-identical to the reference."""
        ws = self.workspace
        plan = self.plan
        color_bits = self._color_bits

        ws.put("color", ram, color_bits)
        level = plan.level_of(ram)
        error = level is None
        if not error:
            ws.put("flag", 0, 1)
            for other in neighbor_visibles:
                ws.put("buf", other, color_bits)
                if ws.get("buf") == ws.get("color"):
                    ws.put("flag", 1, 1)
                ws.free("buf")
            error = bool(ws.get("flag"))
            ws.free("flag")
        if error:
            ws.free_all()
            return plan.reset_color(vertex)

        local = ram - plan.offsets[level]
        if level >= 2:
            iteration = plan.descent_iteration(level)
            result = self._descend_streaming(
                level, local, neighbor_visibles, iteration.q, iteration.degree
            )
        elif level == 1:
            result = self._land_streaming(local, neighbor_visibles)
        else:
            result = self._core_step_streaming(local, neighbor_visibles)
        ws.free_all()
        return result

    # -- streaming pieces ---------------------------------------------------------

    def _eval_digits(self, value, x, q, degree):
        ws = self.workspace
        ws.put("acc", 0, bits_for_range(q))
        for position in range(degree, -1, -1):
            digit = (value // (q ** position)) % q
            ws.put("acc", (ws.get("acc") * x + digit) % q, bits_for_range(q))
        out = ws.get("acc")
        ws.free("acc")
        return out

    def _descend_streaming(self, level, local, neighbor_visibles, q, degree):
        ws = self.workspace
        plan = self.plan
        for x in range(q):
            ws.put("gx", self._eval_digits(local, x, q, degree), bits_for_range(q))
            ok = True
            for color in neighbor_visibles:
                if plan.level_of(color) != level:
                    continue
                nb_local = color - plan.offsets[level]
                if nb_local == local:
                    continue
                ws.put(
                    "nval",
                    self._eval_digits(nb_local, x, q, degree),
                    bits_for_range(q),
                )
                if ws.get("nval") == ws.get("gx"):
                    ok = False
                ws.free("nval")
                if not ok:
                    break
            if ok:
                return plan.to_global(level - 1, x * q + ws.get("gx"))
            ws.free("gx")
        raise AssertionError("no descent point — the plan guarantees one")

    def _land_streaming(self, local, neighbor_visibles):
        ws = self.workspace
        plan = self.plan
        p = self.p
        for x in range(p - 1):
            ws.put("gx", self._eval_digits(local, x, p, 2), bits_for_range(p))
            candidate = self._encode_core(("H", x + 1, ws.get("gx")))
            ws.put("cand", candidate, self._color_bits)
            ok = True
            for color in neighbor_visibles:
                nb_level = plan.level_of(color)
                if nb_level == 1:
                    nb_local = color - plan.offsets[1]
                    if nb_local == local:
                        continue
                    ws.put(
                        "nval",
                        self._eval_digits(nb_local, x, p, 2),
                        bits_for_range(p),
                    )
                    if ws.get("nval") == ws.get("gx"):
                        ok = False
                    ws.free("nval")
                elif nb_level == 0:
                    for option in self._core_candidates(color - plan.offsets[0]):
                        ws.put("opt", option, self._color_bits)
                        if ws.get("opt") == ws.get("cand"):
                            ok = False
                        ws.free("opt")
                if not ok:
                    break
            if ok:
                return plan.to_global(0, candidate)
            ws.free("cand")
            ws.free("gx")
        raise AssertionError("no landing point — the plan guarantees one")

    def _core_step_streaming(self, local, neighbor_visibles):
        ws = self.workspace
        plan = self.plan
        n, p = self.n_colors, self.p
        tag, b, a = self._decode_core(local)
        ws.put("a", a, bits_for_range(p))
        ws.put("b", b, bits_for_range(p))
        ws.put("conflict", 0, 1)
        ws.put("low_working", 0, 1)
        for color in neighbor_visibles:
            if plan.level_of(color) != 0:
                continue
            nt, nb, na = self._decode_core(color - plan.offsets[0])
            ws.put("na", na, bits_for_range(p))
            if tag == "L":
                if nt == "L" and ws.get("na") == ws.get("a"):
                    ws.put("conflict", 1, 1)
            else:
                if (nt == "H" and ws.get("na") == ws.get("a")) or (
                    nt == "L" and nb == 0 and ws.get("na") == ws.get("a")
                ):
                    ws.put("conflict", 1, 1)
                if nt == "L" and nb == 1:
                    ws.put("low_working", 1, 1)
            ws.free("na")
        conflict = bool(ws.get("conflict"))
        low_working = bool(ws.get("low_working"))
        if tag == "L":
            if b == 0:
                new_state = ("L", 0, a)
            elif conflict:
                new_state = ("L", 1, (a + 1) % n)
            else:
                new_state = ("L", 0, a)
        else:
            if conflict or low_working or a >= 2 * n:
                new_state = ("H", b, (a + b) % p)
            elif a < n:
                new_state = ("L", 0, a)
            else:
                new_state = ("L", 1, a - n)
        return plan.to_global(0, self._encode_core(new_state))


class SelfStabMISConstantMemory(SelfStabMIS):
    """O(1)-words self-stabilizing MIS.

    The color field runs through :class:`SelfStabColoringConstantMemory`'s
    metered transition; the status machine needs only two flags (an MIS
    neighbor seen?  am I color-minimal among undecided neighbors?) streamed
    over the buffers.  Bit-identical to :class:`~repro.selfstab.mis.
    SelfStabMIS` built over the plain coloring.
    """

    name = "selfstab-mis-o1-memory"

    def __init__(self, n_bound, delta_bound, bit_limit=None):
        super().__init__(
            n_bound,
            delta_bound,
            coloring_factory=lambda n, d: SelfStabColoringConstantMemory(
                n, d, bit_limit=bit_limit
            ),
        )

    @property
    def peak_words(self):
        """Peak workspace usage of the metered coloring core."""
        return self.coloring.peak_words

    def transition(self, vertex, ram, neighbor_visibles):
        """Metered MIS transition; bit-identical to SelfStabMIS."""
        ws = self.coloring.workspace
        color, status = self._sanitize(ram)
        neighbor_states = [self._sanitize(nv) for nv in neighbor_visibles]
        new_color = self.coloring.transition(
            vertex, color, tuple(c for c, _ in neighbor_states)
        )

        # Streamed status logic: two flags, one neighbor state at a time.
        ws.put("any_mis", 0, 1)
        ws.put("minimal", 1, 1)
        for nb_color, nb_status in neighbor_states:
            if nb_status == "MIS":
                ws.put("any_mis", 1, 1)
            if (
                nb_status == "UND"
                and isinstance(nb_color, int)
                and isinstance(color, int)
                and not color < nb_color
            ):
                ws.put("minimal", 0, 1)
        any_mis = bool(ws.get("any_mis"))
        minimal = bool(ws.get("minimal")) and isinstance(color, int)
        ws.free_all()

        if status == "MIS":
            new_status = "UND" if any_mis else "MIS"
        elif status == "NOTMIS":
            new_status = "NOTMIS" if any_mis else "UND"
        else:
            if any_mis:
                new_status = "NOTMIS"
            elif minimal:
                new_status = "MIS"
            else:
                new_status = "UND"
        return (new_color, new_status)
