"""The self-stabilizing execution engine.

Synchronous rounds over a :class:`~repro.runtime.graph.DynamicGraph`:

1. every present vertex broadcasts ``visible(ram)`` to its neighbors;
2. every present vertex simultaneously computes
   ``transition(vertex, ram, neighbor_visibles)``;
3. the adversary may then do anything: overwrite RAMs, crash / spawn
   vertices, rewire edges (within the ROM bounds).

The engine measures *stabilization time* (rounds from the last fault until
the global state is legal and quiescent — for the deterministic algorithms
here a legal fixed point never moves again) and *adjustment radius* (how far
from the faults RAM changes propagate).
"""

import time
from abc import ABC, abstractmethod

from repro.errors import NotStabilizedError
from repro.obs import core as obs

__all__ = ["SelfStabAlgorithm", "SelfStabEngine"]


class SelfStabAlgorithm(ABC):
    """One self-stabilizing protocol: RAM layout, step rule, legality.

    ``rom`` holds the hard-wired parameters (``n_bound``, ``delta_bound``);
    vertex IDs are the vertex numbers of the dynamic graph (also ROM).
    """

    name = "selfstab"

    # Whether this algorithm implements the batch protocol consumed by
    # repro.selfstab.fast_engine (batch_encode / transition_batch / ...).
    # Subclasses that override `transition` without providing matching batch
    # kernels (e.g. the constant-memory variants) must leave this False so
    # the batch engine falls back to the scalar step for them.
    batch_transitions = False

    def __init__(self, n_bound, delta_bound):
        self.n_bound = n_bound
        self.delta_bound = delta_bound

    @abstractmethod
    def fresh_ram(self, vertex):
        """RAM contents for a vertex that just (re)joined the network.

        Correctness may not depend on this value — the adversary can
        overwrite it — but a sensible default speeds up convergence.
        """

    @abstractmethod
    def visible(self, vertex, ram):
        """The message broadcast to all neighbors this round."""

    @abstractmethod
    def transition(self, vertex, ram, neighbor_visibles):
        """The new RAM, computed from own RAM and neighbor messages only."""

    @abstractmethod
    def is_legal(self, graph, rams):
        """Whether the global state satisfies the problem's specification."""

    def stabilization_bound(self):
        """A generous cap on stabilization time used by the runner."""
        return 30 * (self.delta_bound + 1) + 8 * max(
            1, self.n_bound
        ).bit_length() + 60


class SelfStabEngine:
    """Runs a :class:`SelfStabAlgorithm` under adversarial faults."""

    def __init__(self, graph, algorithm, set_visibility=False):
        """``set_visibility=True`` delivers each vertex the *frozenset* of
        neighbor messages (the SET-LOCAL discipline of Section 1.2.3); the
        interval-descent algorithms only ever test membership, so they run
        unchanged — asserted in the test suite."""
        self.graph = graph
        self.algorithm = algorithm
        self.set_visibility = set_visibility
        self.rams = {v: algorithm.fresh_ram(v) for v in graph.vertices()}
        self.round_count = 0
        self._touched = set()  # vertices whose RAM changed since last reset
        self.max_message_bits = 0  # largest broadcast payload seen (CONGEST check)

    # -- adversary API ---------------------------------------------------------

    def corrupt(self, vertex, ram):
        """Overwrite a vertex's RAM with an arbitrary value."""
        if not self.graph.is_present(vertex):
            raise ValueError("vertex %d is not present" % vertex)
        self.rams[vertex] = ram
        self._touched.add(vertex)
        tel = obs.active()
        if tel.enabled:
            tel.counter("selfstab.corruptions", algorithm=self.algorithm.name)
            tel.event("selfstab.corrupt", vertex=vertex)

    def _record_topology_event(self, kind):
        tel = obs.active()
        if tel.enabled:
            tel.counter(
                "selfstab.topology_events", kind=kind, algorithm=self.algorithm.name
            )

    def spawn_vertex(self, vertex):
        """Dynamic update: a vertex appears (with fresh RAM)."""
        self.graph.add_vertex(vertex)
        if vertex not in self.rams:
            self.rams[vertex] = self.algorithm.fresh_ram(vertex)
        self._touched.add(vertex)
        self._record_topology_event("spawn")

    def crash_vertex(self, vertex):
        """Dynamic update: a vertex crashes, taking its edges with it."""
        neighbors = self.graph.neighbors(vertex)
        self.graph.remove_vertex(vertex)
        self.rams.pop(vertex, None)
        self._touched.update(neighbors)
        self._record_topology_event("crash")

    def add_edge(self, u, v):
        """Dynamic update: a link appears (within the Delta bound)."""
        self.graph.add_edge(u, v)
        self._touched.update((u, v))
        self._record_topology_event("add-edge")

    def remove_edge(self, u, v):
        """Dynamic update: a link disappears."""
        self.graph.remove_edge(u, v)
        self._touched.update((u, v))
        self._record_topology_event("remove-edge")

    # -- execution --------------------------------------------------------------

    @staticmethod
    def _payload_bits(value):
        """Size of a broadcast message in bits (the self-stab algorithms
        broadcast a single color, or a (color, status) pair — all O(log n))."""
        if isinstance(value, bool) or value is None:
            return 1
        if isinstance(value, int):
            return max(1, abs(value).bit_length() + 1)
        if isinstance(value, str):
            return 8 * len(value)
        if isinstance(value, (tuple, list)):
            return sum(SelfStabEngine._payload_bits(item) for item in value)
        return 64  # unknown/corrupted payloads: charge a flat word

    def step(self):
        """One fault-free synchronous round; returns the set of changed vertices."""
        algorithm = self.algorithm
        vertices = self.graph.vertices()
        visible = {v: algorithm.visible(v, self.rams[v]) for v in vertices}
        for v in vertices:
            if self.graph.degree(v):
                self.max_message_bits = max(
                    self.max_message_bits, self._payload_bits(visible[v])
                )
        changed = set()
        new_rams = {}
        for v in vertices:
            neighbor_visibles = tuple(
                visible[u] for u in self.graph.neighbors(v)
            )
            if self.set_visibility:
                neighbor_visibles = frozenset(neighbor_visibles)
            new_ram = algorithm.transition(v, self.rams[v], neighbor_visibles)
            new_rams[v] = new_ram
            if new_ram != self.rams[v]:
                changed.add(v)
        self.rams.update(new_rams)
        self.round_count += 1
        self._touched.update(changed)
        return changed

    def is_legal(self):
        """Whether the current global state satisfies the specification."""
        return self.algorithm.is_legal(self.graph, self.rams)

    def run_to_quiescence(self, max_rounds=None):
        """Run fault-free rounds until legal and fixed; return rounds used.

        The transition is deterministic, so a round with no RAM change is a
        fixed point: the state can never change again without a fault.
        Raises :class:`~repro.errors.NotStabilizedError` past ``max_rounds``.
        """
        bound = max_rounds or self.algorithm.stabilization_bound()
        tel = obs.active()
        recording = tel.enabled
        run_start = time.perf_counter() if recording else 0.0
        round_rows = [] if recording else None
        with tel.span("selfstab.stabilize", algorithm=self.algorithm.name):
            for rounds_used in range(bound + 1):
                snapshot_changed = self.step()
                if recording:
                    round_rows.append(
                        {"round": rounds_used, "changed": len(snapshot_changed)}
                    )
                if not snapshot_changed and self.is_legal():
                    if recording:
                        self._record_stabilization(
                            tel, rounds_used + 1, True, round_rows,
                            time.perf_counter() - run_start,
                        )
                    return rounds_used + 1
            if recording:
                self._record_stabilization(
                    tel, bound + 1, self.is_legal(), round_rows,
                    time.perf_counter() - run_start, stabilized=False,
                )
            raise NotStabilizedError(
                "%s not stabilized after %d rounds (legal=%s)"
                % (self.algorithm.name, bound + 1, self.is_legal())
            )

    def _record_stabilization(
        self, tel, rounds_used, legal, round_rows, wall_seconds, stabilized=True
    ):
        """Emit the per-stabilization telemetry record (both engine paths)."""
        name = self.algorithm.name
        tel.event(
            "selfstab.run",
            algorithm=name,
            rounds_used=rounds_used,
            stabilized=stabilized,
            legal=legal,
            touched=len(self.touched),
            rounds=round_rows,
            max_message_bits=self.max_message_bits,
            wall_seconds=wall_seconds,
        )
        tel.counter("selfstab.stabilizations", algorithm=name)
        tel.counter("selfstab.rounds", rounds_used, algorithm=name)
        tel.gauge("selfstab.max_message_bits", self.max_message_bits, algorithm=name)
        tel.histogram("selfstab.touched_set_size", len(self.touched), algorithm=name)

    # -- measurement -------------------------------------------------------------

    def reset_touched(self):
        """Start a fresh adjustment-radius measurement window."""
        self._touched = set()

    @property
    def touched(self):
        """Vertices whose RAM changed (by fault or rule) since the last reset."""
        return set(self._touched)

    def adjustment_radius(self, fault_sources):
        """Max distance from ``fault_sources`` of any touched vertex.

        Call ``reset_touched`` right after injecting a localized fault, run to
        quiescence, then call this.  Unreachable touched vertices count as
        infinity (never expected for the algorithms here).
        """
        distances = self.graph.bfs_distances(fault_sources)
        radius = 0
        for v in self._touched:
            if v not in distances:
                radius = float("inf")
                break
            radius = max(radius, distances[v])
        tel = obs.active()
        if tel.enabled and radius != float("inf"):
            tel.histogram(
                "selfstab.adjustment_radius", radius, algorithm=self.algorithm.name
            )
        return radius
