"""Fully-dynamic self-stabilizing algorithms (Section 4 and Theorem 7.5).

The model: every vertex has failure-proof ROM (its ID, the bounds ``n`` and
``Delta``, the program) and fault-prone RAM (everything else, e.g. its
color).  An adversary may, between any two rounds, overwrite any RAM
arbitrarily, crash vertices, spawn vertices, and rewire links — subject only
to the ROM bounds.  Once faults stop, the algorithms below re-converge to a
legal state within ``O(Delta + log* n)`` rounds:

* :class:`~repro.selfstab.coloring.SelfStabColoring` — proper
  ``O(Delta)``-coloring (Lemma 4.2): Mod-Linial interval descent into an AG
  core.
* :class:`~repro.selfstab.exact.SelfStabExactColoring` — proper
  ``(Delta+1)``-coloring (Theorems 4.3 / 7.5): the same descent into an
  extended AG(p)/AG(N) high/low hybrid core.
* :class:`~repro.selfstab.mis.SelfStabMIS` — maximal independent set
  (Theorems 4.5 / 4.6), layered over the coloring.
* :mod:`repro.selfstab.line` — maximal matching and ``(2*Delta-1)``-edge-
  coloring by running the above on a line-graph mirror (Theorem 4.7).

:mod:`repro.selfstab.engine` provides the synchronous engine with the fault
API, quiescence detection, and adjustment-radius measurement;
:mod:`repro.selfstab.fast_engine` the vectorized drop-in engine (construct
either through ``repro.runtime.backends.resolve_backend("selfstab", ...)``);
and :mod:`repro.selfstab.adversary` seeded fault campaigns.
"""

from repro.selfstab.engine import SelfStabAlgorithm, SelfStabEngine
from repro.selfstab.fast_engine import (
    BACKENDS,
    BatchSelfStabEngine,
    batch_supported,
)
from repro.selfstab.plan import IntervalPlan
from repro.selfstab.coloring import SelfStabColoring
from repro.selfstab.exact import SelfStabExactColoring
from repro.selfstab.lowmem import SelfStabColoringConstantMemory
from repro.selfstab.mis import SelfStabMIS
from repro.selfstab.line import LineGraphMirror, SelfStabEdgeColoring, SelfStabMaximalMatching
from repro.selfstab.adversary import FaultCampaign

__all__ = [
    "SelfStabAlgorithm",
    "SelfStabEngine",
    "BatchSelfStabEngine",
    "batch_supported",
    "BACKENDS",
    "IntervalPlan",
    "SelfStabColoring",
    "SelfStabExactColoring",
    "SelfStabColoringConstantMemory",
    "SelfStabMIS",
    "LineGraphMirror",
    "SelfStabEdgeColoring",
    "SelfStabMaximalMatching",
    "FaultCampaign",
]
