"""Fully-dynamic self-stabilizing exact (Delta+1)-coloring (Theorems 4.3, 7.5).

Same interval descent as :mod:`repro.selfstab.coloring`, but ``I_0`` hosts the
*extended* high/low hybrid:

* low states ``(L, 0, a)`` (final) and ``(L, 1, a)`` (AG(N) working, rotating
  ``a`` by 1 mod ``N = Delta + 1``), encoded as ``b * N + a`` in ``[0, 2N)``;
* high states ``(H, b, a)`` with ``b in [1, P-1]``, ``a in Z_P``, running
  AG(P) — rotate ``a`` by ``b`` — gated exactly as in Section 7: a high
  vertex may leave the high range only when it has no working-low neighbor,
  no high neighbor on the same ``a``, no finalized-low neighbor on the same
  ``a``, *and* its ``a`` lies below ``2N`` (it then becomes the low vertex
  ``a`` encodes).

The paper's static hybrid uses a prime ``p <= 2N`` so every landing value is
low.  Here the landing step from ``I_1`` needs ``P - 1 >= 4 * Delta + 1``
evaluation points (``2 * Delta`` polynomial agreements plus ``2 * Delta``
forbidden next-states of core neighbors), forcing ``P > 2N``; the extra
guard ``a < 2N`` restores convergence: within any window of ``P`` rounds a
high vertex's ``a`` visits all ``2N = 2 * Delta + 2`` low values while its at
most ``Delta`` neighbors block at most ``2 * Delta`` rounds, so a landing
round always exists.  (See DESIGN.md's substitution notes.)

Landing arrivals enter as high states ``(H, x + 1, P_v(x))`` — the
Excl-Linial pair written into the high range — so they can never collide
with low states, and the forbidden set keeps them off every high neighbor's
possible next state.
"""

from repro.mathutil.gf import eval_poly_mod, int_to_poly_coeffs
from repro.selfstab.engine import SelfStabAlgorithm
from repro.selfstab.kernels import (
    ColorBatchOps,
    apply_upper_descent,
    batch_levels,
    masked_point_search,
)
from repro.selfstab.plan import IntervalPlan
from repro.linial.core import linial_next_color

__all__ = ["SelfStabExactColoring"]


class SelfStabExactColoring(ColorBatchOps, SelfStabAlgorithm):
    """Self-stabilizing proper (Delta+1)-coloring, O(Delta + log* n) rounds."""

    name = "selfstab-exact-coloring"

    def __init__(self, n_bound, delta_bound):
        super().__init__(n_bound, delta_bound)
        self.n_colors = delta_bound + 1  # N
        from repro.selfstab.coloring import SelfStabColoring

        i1_size = SelfStabColoring._i1_size(n_bound, delta_bound)
        self.p = IntervalPlan.landing_field_for(
            delta_bound, i1_size, extra_floor=4 * delta_bound + 3
        )
        core_size = 2 * self.n_colors + (self.p - 1) * self.p
        self.plan = IntervalPlan(
            n_bound,
            delta_bound,
            core_size=core_size,
            landing_q=self.p,
            landing_points=self.p - 1,
        )

    # -- core state encoding -------------------------------------------------------

    def _decode_core(self, local):
        """Return ('L', b, a) or ('H', b, a) from a core-local int."""
        two_n = 2 * self.n_colors
        if local < two_n:
            return ("L", local // self.n_colors, local % self.n_colors)
        j = local - two_n
        return ("H", j // self.p + 1, j % self.p)

    def _encode_core(self, state):
        tag, b, a = state
        if tag == "L":
            return b * self.n_colors + a
        return 2 * self.n_colors + (b - 1) * self.p + a

    # -- the extended hybrid step ---------------------------------------------------

    def _core_step(self, state, neighbor_states):
        tag, b, a = state
        n, p = self.n_colors, self.p
        if tag == "L":
            if b == 0:
                return state
            conflict = any(
                nt == "L" and na == a for nt, _, na in neighbor_states
            )
            if conflict:
                return ("L", 1, (a + 1) % n)
            return ("L", 0, a)
        # High state.
        has_low_working = any(
            nt == "L" and nb == 1 for nt, nb, _ in neighbor_states
        )
        conflict = any(
            (nt == "H" and na == a) or (nt == "L" and nb == 0 and na == a)
            for nt, nb, na in neighbor_states
        )
        if conflict or has_low_working or a >= 2 * n:
            return ("H", b, (a + b) % p)
        if a < n:
            return ("L", 0, a)
        return ("L", 1, a - n)

    def _core_candidates(self, local):
        """Possible next core states of a core neighbor (the set S')."""
        state = self._core_step_options(self._decode_core(local))
        return tuple(self._encode_core(s) for s in state)

    def _core_step_options(self, state):
        tag, b, a = state
        n, p = self.n_colors, self.p
        if tag == "L":
            if b == 0:
                return (state,)
            return (("L", 1, (a + 1) % n), ("L", 0, a))
        options = [("H", b, (a + b) % p)]
        if a < n:
            options.append(("L", 0, a))
        elif a < 2 * n:
            options.append(("L", 1, a - n))
        return tuple(options)

    # -- landing (I_1 -> I_0) ---------------------------------------------------------

    def _land(self, local, same_level_locals, forbidden_core_locals):
        """Excl-Linial into the high range: state (H, x+1, P_v(x))."""
        p = self.p
        mine = int_to_poly_coeffs(local, 2, p)
        neighbor_polys = [
            int_to_poly_coeffs(c, 2, p)
            for c in set(same_level_locals)
            if c != local
        ]
        forbidden = set(forbidden_core_locals)
        for x in range(p - 1):  # keep b = x + 1 inside [1, p - 1]
            value = eval_poly_mod(mine, x, p)
            candidate = self._encode_core(("H", x + 1, value))
            if candidate in forbidden:
                continue
            if all(eval_poly_mod(g, x, p) != value for g in neighbor_polys):
                return candidate
        raise AssertionError(
            "no landing point in GF(%d) with %d neighbors and %d forbidden — "
            "the plan guarantees one" % (p, len(neighbor_polys), len(forbidden))
        )

    # -- SelfStabAlgorithm interface -----------------------------------------------

    def fresh_ram(self, vertex):
        return self.plan.reset_color(vertex)

    def visible(self, vertex, ram):
        return ram

    def transition(self, vertex, ram, neighbor_visibles):
        plan = self.plan
        color = ram
        level = plan.level_of(color)
        if level is None or any(color == other for other in neighbor_visibles):
            return plan.reset_color(vertex)

        local = color - plan.offsets[level]
        leveled = [(plan.level_of(c), c) for c in neighbor_visibles]
        if level >= 2:
            iteration = plan.descent_iteration(level)
            same_level = [
                c - plan.offsets[level] for lv, c in leveled if lv == level
            ]
            new_local = linial_next_color(
                local, same_level, iteration.q, iteration.degree
            )
            return plan.to_global(level - 1, new_local)
        if level == 1:
            same_level = [c - plan.offsets[1] for lv, c in leveled if lv == 1]
            forbidden = []
            for lv, c in leveled:
                if lv == 0:
                    forbidden.extend(self._core_candidates(c - plan.offsets[0]))
            new_local = self._land(local, same_level, forbidden)
            return plan.to_global(0, new_local)
        core_neighbors = [
            self._decode_core(c - plan.offsets[0]) for lv, c in leveled if lv == 0
        ]
        new_state = self._core_step(self._decode_core(local), core_neighbors)
        return plan.to_global(0, self._encode_core(new_state))

    # -- batch protocol (see repro.selfstab.fast_engine) -------------------------
    #
    # Same column layout and descent kernel as SelfStabColoring; only the
    # landing encoder/forbidden set (high-range Excl-Linial over the <= 2
    # next states of each core neighbor) and the level-0 machine (the
    # decoded high/low hybrid, elementwise) differ.

    def _np_offsets(self, np):
        arr = self.__dict__.get("_offsets_arr")
        if arr is None:
            arr = np.asarray(self.plan.offsets, dtype=np.int64)
            self._offsets_arr = arr
        return arr

    def transition_batch_colors(self, colors, ctx):
        """Vectorized ``transition`` over the whole color column."""
        np, csr = ctx.np, ctx.csr
        plan = self.plan
        levels = batch_levels(colors, plan, self._np_offsets(np), np)
        new = np.empty(colors.shape[0], dtype=np.int64)

        conflict = csr.any_per_vertex(csr.gather(colors) == csr.owner_values(colors))
        reset = (levels < 0) | conflict
        if bool(reset.any()):
            new[reset] = plan.offsets[plan.levels - 1] + ctx.vertices[reset]
        active = ~reset
        slot_levels = levels[csr.indices]

        apply_upper_descent(new, colors, levels, slot_levels, active, plan, ctx)

        mask1 = active & (levels == 1)
        if bool(mask1.any()):
            self._batch_land(new, colors, mask1, slot_levels, ctx)

        mask0 = active & (levels == 0)
        if bool(mask0.any()):
            self._batch_core(new, colors, mask0, slot_levels, ctx)
        return new

    def _batch_core_options(self, core_locals, np):
        """Per-value next-state options: ``(opt1, opt2, has2)`` core-locals.

        Vectorized ``_core_candidates``: low working states may rotate or
        finalize; high states may rotate or (when their ``a`` encodes a low
        state) land on it — and both low encodings collapse to the value
        ``a`` itself.  Final low states have a single (fixed) option.
        """
        n, p = self.n_colors, self.p
        two_n = 2 * n
        is_low = core_locals < two_n
        low_b = core_locals // n
        low_a = core_locals % n
        high_j = core_locals - two_n
        high_b = high_j // p + 1
        high_a = high_j % p
        opt1 = np.where(
            is_low,
            np.where(low_b == 0, core_locals, n + (low_a + 1) % n),
            two_n + (high_b - 1) * p + (high_a + high_b) % p,
        )
        has2 = np.where(is_low, low_b == 1, high_a < two_n)
        opt2 = np.where(is_low, low_a, high_a)
        return opt1, opt2, has2

    def _batch_land(self, new, colors, mask1, slot_levels, ctx):
        """Excl-Linial landing into the high range: state (H, x+1, P_v(x))."""
        np, csr = ctx.np, ctx.csr
        plan, p = self.plan, self.p
        two_n = 2 * self.n_colors
        off1 = plan.offsets[1]
        sub = np.nonzero(mask1)[0]
        inv = np.empty(colors.shape[0], dtype=np.int64)
        inv[sub] = np.arange(sub.size, dtype=np.int64)
        locals_ = colors[sub] - off1

        smask = mask1[csr.rows] & (slot_levels == 1)
        owner_rows = csr.rows[smask]
        nbr_locals = colors[csr.indices[smask]] - off1
        keep = nbr_locals != colors[owner_rows] - off1

        cmask = mask1[csr.rows] & (slot_levels == 0)
        core_rows = inv[csr.rows[cmask]]
        opt1, opt2, has2 = self._batch_core_options(
            colors[csr.indices[cmask]], np  # offsets[0] == 0
        )

        def forbidden(cand, pending):
            hit = np.zeros(sub.size, dtype=bool)
            sel = pending[core_rows]
            rows = core_rows[sel]
            if rows.size:
                match = (opt1[sel] == cand[rows]) | (
                    has2[sel] & (opt2[sel] == cand[rows])
                )
                hit[rows[match]] = True
            return hit

        result = masked_point_search(
            locals_,
            p,
            2,
            p - 1,  # keep b = x + 1 inside [1, p - 1]
            inv[owner_rows[keep]],
            nbr_locals[keep],
            lambda x, values: two_n + x * p + values,
            forbidden,
            np,
        )
        if result is None:
            ctx.replay()
        new[sub] = plan.offsets[0] + result

    def _batch_core(self, new, colors, mask0, slot_levels, ctx):
        """The extended high/low hybrid step, elementwise over the core."""
        np, csr = ctx.np, ctx.csr
        n, p = self.n_colors, self.p
        two_n = 2 * n
        # offsets[0] == 0: core-local values are the colors themselves.
        is_low = colors < two_n
        low_b = colors // n
        low_a = colors % n
        high_j = colors - two_n
        high_b = high_j // p + 1
        high_a = high_j % p
        own_a = np.where(is_low, low_a, high_a)

        smask = mask0[csr.rows] & (slot_levels == 0)
        owner_rows = csr.rows[smask]
        nb = colors[csr.indices[smask]]
        nb_is_low = nb < two_n
        nb_b = nb // n
        nb_a = np.where(nb_is_low, nb % n, (nb - two_n) % p)
        own_low_s = is_low[owner_rows]
        same_a = nb_a == own_a[owner_rows]
        conflict_slot = np.where(
            own_low_s,
            nb_is_low & same_a,
            (~nb_is_low & same_a) | (nb_is_low & (nb_b == 0) & same_a),
        )
        size = colors.shape[0]
        conflict = np.zeros(size, dtype=bool)
        conflict[owner_rows[conflict_slot]] = True
        low_working = np.zeros(size, dtype=bool)
        low_working[owner_rows[nb_is_low & (nb_b == 1)]] = True

        stepped = np.where(
            is_low,
            np.where(
                low_b == 0,
                colors,
                np.where(conflict, n + (low_a + 1) % n, low_a),
            ),
            np.where(
                conflict | low_working | (high_a >= two_n),
                two_n + (high_b - 1) * p + (high_a + high_b) % p,
                high_a,  # both low landings encode to the value a itself
            ),
        )
        new[mask0] = stepped[mask0]

    def is_legal(self, graph, rams):
        """Proper (Delta+1)-coloring: every vertex in a final low state."""
        offset = self.plan.offsets[0]
        for v in graph.vertices():
            color = rams.get(v)
            if self.plan.level_of(color) != 0:
                return False
            tag, b, _ = self._decode_core(color - offset)
            if tag != "L" or b != 0:
                return False
        for v in graph.vertices():
            for u in graph.neighbors(v):
                if rams[u] == rams[v]:
                    return False
        return True

    def batch_is_legal(self, state, csr, np):
        """Vectorized :meth:`is_legal` over canonical columns.

        Final low states ('L', 0, a) are exactly
        ``offset <= c < offset + N``, so the scalar predicate collapses to a
        range check plus edge-wise properness.
        """
        (colors,) = state
        local = colors - self.plan.offsets[0]
        if not bool(((local >= 0) & (local < self.n_colors)).all()):
            return False
        return not bool((colors[csr.edge_u] == colors[csr.edge_v]).any())

    def final_colors(self, graph, rams):
        """Colors in ``[0, Delta]`` from a legal state."""
        offset = self.plan.offsets[0]
        return {
            v: self._decode_core(rams[v] - offset)[2] for v in graph.vertices()
        }

    def stabilization_bound(self):
        return self.plan.levels + 8 * self.p + 4 * self.n_colors + 24
