"""Self-stabilizing maximal independent set (Section 4.2, Theorems 4.5/4.6).

Runs the self-stabilizing coloring in one RAM field and an MIS status
machine in another.  Statuses are ``MIS``, ``NOTMIS`` and ``UND``
(undecided); every round, alongside the coloring step:

* two adjacent ``MIS`` vertices both become ``UND`` (independence repair);
* a ``NOTMIS`` vertex with no ``MIS`` neighbor becomes ``UND`` (maximality
  repair);
* an ``UND`` vertex with an ``MIS`` neighbor becomes ``NOTMIS``;
* an ``UND`` vertex with no ``MIS`` neighbor whose color is smaller than all
  its undecided neighbors' colors joins the MIS.

Once the coloring stabilizes (proper, finalized), color classes are
processed implicitly in color order and the MIS stabilizes within
``O(Delta)`` further rounds (Theorem 4.5).  A vertex in the MIS whose
1-neighborhood is fault-free stays in the MIS, and a NOTMIS vertex with a
stable 2-neighborhood keeps its witness — adjustment radius 2
(Theorem 4.6).
"""

from repro.analysis.invariants import is_maximal_independent_set
from repro.selfstab.coloring import SelfStabColoring
from repro.selfstab.engine import SelfStabAlgorithm

__all__ = ["SelfStabMIS"]

MIS = "MIS"
NOTMIS = "NOTMIS"
UND = "UND"
_STATUSES = (MIS, NOTMIS, UND)


class SelfStabMIS(SelfStabAlgorithm):
    """Self-stabilizing MIS with O(Delta + log* n) stabilization time.

    RAM: ``(color, status)``.  The coloring sub-protocol may be swapped
    (e.g. for the exact variant) via ``coloring_factory``.
    """

    name = "selfstab-mis"

    def __init__(self, n_bound, delta_bound, coloring_factory=SelfStabColoring):
        super().__init__(n_bound, delta_bound)
        self.coloring = coloring_factory(n_bound, delta_bound)

    def fresh_ram(self, vertex):
        return (self.coloring.fresh_ram(vertex), UND)

    def visible(self, vertex, ram):
        return ram

    @staticmethod
    def _sanitize(ram):
        """Map corrupted RAM shapes to something the rules can process."""
        if (
            isinstance(ram, tuple)
            and len(ram) == 2
            and ram[1] in _STATUSES
        ):
            return ram
        if isinstance(ram, tuple) and len(ram) == 2:
            return (ram[0], UND)
        return (ram, UND)

    def transition(self, vertex, ram, neighbor_visibles):
        color, status = self._sanitize(ram)
        neighbor_states = [self._sanitize(nv) for nv in neighbor_visibles]
        neighbor_colors = tuple(c for c, _ in neighbor_states)

        new_color = self.coloring.transition(vertex, color, neighbor_colors)

        any_mis = any(s == MIS for _, s in neighbor_states)
        if status == MIS:
            new_status = UND if any_mis else MIS
        elif status == NOTMIS:
            new_status = NOTMIS if any_mis else UND
        else:  # UND
            if any_mis:
                new_status = NOTMIS
            else:
                und_colors = [
                    c
                    for c, s in neighbor_states
                    if s == UND and isinstance(c, int)
                ]
                if isinstance(color, int) and all(color < c for c in und_colors):
                    new_status = MIS
                else:
                    new_status = UND
        return (new_color, new_status)

    # -- batch protocol (see repro.selfstab.fast_engine) -------------------------
    #
    # Four columns: color value (the coloring's int64 encoding), color
    # is-int flag, sanitized status code (what the rules read) and raw
    # status code (3 = not a canonical (color, status) pair — never equal to
    # a produced status, so the changed mask matches the scalar tuple
    # comparison).  The color column steps through the sub-coloring's
    # kernel; the status machine is bincount/minimum-scatter arithmetic.

    _STATUS_CODES = {MIS: 0, NOTMIS: 1, UND: 2}

    @property
    def batch_transitions(self):
        """Batch-capable iff the injected coloring is (lowmem ones are not)."""
        return bool(getattr(self.coloring, "batch_transitions", False))

    def _encode_one(self, raw):
        """``(color, is_int, status_san, status_raw, canonical)`` or None."""
        canonical = True
        if isinstance(raw, tuple) and len(raw) == 2 and raw[1] in _STATUSES:
            color = raw[0]
            status_san = status_raw = self._STATUS_CODES[raw[1]]
        else:
            color = raw[0] if isinstance(raw, tuple) and len(raw) == 2 else raw
            status_san, status_raw = 2, 3
            canonical = False
        if isinstance(color, bool):
            return int(color), True, status_san, status_raw, False
        if isinstance(color, int):
            if not -(1 << 61) < color < (1 << 61):
                return None
            return color, True, status_san, status_raw, canonical
        from repro.selfstab.kernels import SENTINEL

        return SENTINEL, False, status_san, status_raw, False

    def batch_encode(self, raws, np):
        """Columns for a RAM list: ``(state, noncanon)`` or None (exotic)."""
        size = len(raws)
        color_vals = np.empty(size, dtype=np.int64)
        color_is_int = np.zeros(size, dtype=bool)
        status_san = np.empty(size, dtype=np.int64)
        status_raw = np.empty(size, dtype=np.int64)
        noncanon = {}
        for i, raw in enumerate(raws):
            encoded = self._encode_one(raw)
            if encoded is None:
                return None
            color_vals[i], color_is_int[i], status_san[i], status_raw[i], ok = encoded
            if not ok:
                noncanon[i] = raw
        return (color_vals, color_is_int, status_san, status_raw), noncanon

    def batch_encode_one(self, raw):
        """Column values for one RAM: ``(cols, canonical)`` or None (exotic)."""
        encoded = self._encode_one(raw)
        if encoded is None:
            return None
        return encoded[:4], encoded[4]

    def batch_decode(self, state):
        """The canonical (post-step) state as the scalar RAM list."""
        color_vals, _, _, status_raw = state
        return [
            (color, _STATUSES[code])
            for color, code in zip(color_vals.tolist(), status_raw.tolist())
        ]

    def batch_payload_max(self, state, include, np):
        """Max broadcast payload bits: color bits plus the status string's."""
        color_vals, _, _, status_raw = state
        best = 0
        for code, status_bits in ((0, 24), (1, 48), (2, 24)):  # 8 bits/char
            group = include & (status_raw == code)
            if bool(group.any()):
                color_bits = max(
                    1, int(np.abs(color_vals[group]).max()).bit_length() + 1
                )
                best = max(best, color_bits + status_bits)
        return best

    def transition_batch(self, state, ctx):
        """One synchronous round: ``(new_state, changed_mask)``."""
        np, csr = ctx.np, ctx.csr
        color_vals, color_is_int, status_san, status_raw = state
        new_colors = self.coloring.transition_batch_colors(color_vals, ctx)

        slot_status = status_san[csr.indices]
        any_mis = csr.any_per_vertex(slot_status == 0)
        # Color-minimal among undecided int-colored neighbors (strict <).
        und_int = (slot_status == 2) & color_is_int[csr.indices]
        min_und = np.full(color_vals.shape[0], np.iinfo(np.int64).max, dtype=np.int64)
        if bool(und_int.any()):
            np.minimum.at(min_und, csr.rows[und_int], color_vals[csr.indices[und_int]])
        minimal = color_is_int & (color_vals < min_und)

        new_status = np.empty_like(status_san)
        in_mis = status_san == 0
        new_status[in_mis] = np.where(any_mis[in_mis], 2, 0)
        not_mis = status_san == 1
        new_status[not_mis] = np.where(any_mis[not_mis], 1, 2)
        undecided = status_san == 2
        new_status[undecided] = np.where(
            any_mis[undecided], 1, np.where(minimal[undecided], 0, 2)
        )

        changed = (color_vals != new_colors) | (status_raw != new_status)
        new_state = (
            new_colors,
            np.ones_like(color_is_int),
            new_status,
            new_status.copy(),
        )
        return new_state, changed

    def is_legal(self, graph, rams):
        colors = {}
        statuses = {}
        for v in graph.vertices():
            color, status = self._sanitize(rams.get(v))
            colors[v] = color
            statuses[v] = status
        if not self.coloring.is_legal(graph, colors):
            return False
        if any(statuses[v] == UND for v in graph.vertices()):
            return False
        members = {v for v in graph.vertices() if statuses[v] == MIS}
        snapshot, index = graph.snapshot()
        return is_maximal_independent_set(
            snapshot, {index[v] for v in members}
        )

    def mis_members(self, graph, rams):
        """The MIS vertex set of a (legal) state."""
        return {
            v
            for v in graph.vertices()
            if self._sanitize(rams[v])[1] == MIS
        }

    def stabilization_bound(self):
        palette = getattr(self.coloring, "q", None) or getattr(self.coloring, "p")
        return self.coloring.stabilization_bound() + 3 * palette + 16
