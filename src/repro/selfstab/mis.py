"""Self-stabilizing maximal independent set (Section 4.2, Theorems 4.5/4.6).

Runs the self-stabilizing coloring in one RAM field and an MIS status
machine in another.  Statuses are ``MIS``, ``NOTMIS`` and ``UND``
(undecided); every round, alongside the coloring step:

* two adjacent ``MIS`` vertices both become ``UND`` (independence repair);
* a ``NOTMIS`` vertex with no ``MIS`` neighbor becomes ``UND`` (maximality
  repair);
* an ``UND`` vertex with an ``MIS`` neighbor becomes ``NOTMIS``;
* an ``UND`` vertex with no ``MIS`` neighbor whose color is smaller than all
  its undecided neighbors' colors joins the MIS.

Once the coloring stabilizes (proper, finalized), color classes are
processed implicitly in color order and the MIS stabilizes within
``O(Delta)`` further rounds (Theorem 4.5).  A vertex in the MIS whose
1-neighborhood is fault-free stays in the MIS, and a NOTMIS vertex with a
stable 2-neighborhood keeps its witness — adjustment radius 2
(Theorem 4.6).
"""

from repro.analysis.invariants import is_maximal_independent_set
from repro.selfstab.coloring import SelfStabColoring
from repro.selfstab.engine import SelfStabAlgorithm

__all__ = ["SelfStabMIS"]

MIS = "MIS"
NOTMIS = "NOTMIS"
UND = "UND"
_STATUSES = (MIS, NOTMIS, UND)


class SelfStabMIS(SelfStabAlgorithm):
    """Self-stabilizing MIS with O(Delta + log* n) stabilization time.

    RAM: ``(color, status)``.  The coloring sub-protocol may be swapped
    (e.g. for the exact variant) via ``coloring_factory``.
    """

    name = "selfstab-mis"

    def __init__(self, n_bound, delta_bound, coloring_factory=SelfStabColoring):
        super().__init__(n_bound, delta_bound)
        self.coloring = coloring_factory(n_bound, delta_bound)

    def fresh_ram(self, vertex):
        return (self.coloring.fresh_ram(vertex), UND)

    def visible(self, vertex, ram):
        return ram

    @staticmethod
    def _sanitize(ram):
        """Map corrupted RAM shapes to something the rules can process."""
        if (
            isinstance(ram, tuple)
            and len(ram) == 2
            and ram[1] in _STATUSES
        ):
            return ram
        if isinstance(ram, tuple) and len(ram) == 2:
            return (ram[0], UND)
        return (ram, UND)

    def transition(self, vertex, ram, neighbor_visibles):
        color, status = self._sanitize(ram)
        neighbor_states = [self._sanitize(nv) for nv in neighbor_visibles]
        neighbor_colors = tuple(c for c, _ in neighbor_states)

        new_color = self.coloring.transition(vertex, color, neighbor_colors)

        any_mis = any(s == MIS for _, s in neighbor_states)
        if status == MIS:
            new_status = UND if any_mis else MIS
        elif status == NOTMIS:
            new_status = NOTMIS if any_mis else UND
        else:  # UND
            if any_mis:
                new_status = NOTMIS
            else:
                und_colors = [
                    c
                    for c, s in neighbor_states
                    if s == UND and isinstance(c, int)
                ]
                if isinstance(color, int) and all(color < c for c in und_colors):
                    new_status = MIS
                else:
                    new_status = UND
        return (new_color, new_status)

    def is_legal(self, graph, rams):
        colors = {}
        statuses = {}
        for v in graph.vertices():
            color, status = self._sanitize(rams.get(v))
            colors[v] = color
            statuses[v] = status
        if not self.coloring.is_legal(graph, colors):
            return False
        if any(statuses[v] == UND for v in graph.vertices()):
            return False
        members = {v for v in graph.vertices() if statuses[v] == MIS}
        snapshot, index = graph.snapshot()
        return is_maximal_independent_set(
            snapshot, {index[v] for v in members}
        )

    def mis_members(self, graph, rams):
        """The MIS vertex set of a (legal) state."""
        return {
            v
            for v in graph.vertices()
            if self._sanitize(rams[v])[1] == MIS
        }

    def stabilization_bound(self):
        palette = getattr(self.coloring, "q", None) or getattr(self.coloring, "p")
        return self.coloring.stabilization_bound() + 3 * palette + 16
