"""O(1)-words-per-vertex execution (end of Section 3).

The paper argues the whole Corollary 3.6 pipeline runs with O(1) *words* of
local memory per vertex (a word = Theta(log n) bits), given the standard
assumption that each incoming message sits in a re-readable read-only buffer:

* the AG step streams neighbor colors one at a time, keeping only its own
  pair and a conflict flag;
* Linial's step iterates over candidate points ``x``, re-streaming the
  buffers per ``x`` and evaluating one neighbor polynomial at a time —
  a color's polynomial coefficients are just its base-``q`` digits, i.e. as
  many bits as the color itself;
* the standard reduction scans candidate colors ``0..Delta``, re-streaming
  the buffers per candidate, instead of materializing the Delta-sized
  forbidden set.

:class:`Workspace` is an explicit register file that meters the peak live
bits; :func:`delta_plus_one_coloring_low_memory` runs the full pipeline
through it and reports the per-vertex peak in words.
"""

from repro.lowmem.workspace import Workspace, WorkspaceOverflowError
from repro.lowmem.steps import (
    ag_step_low_memory,
    linial_step_low_memory,
    standard_reduction_step_low_memory,
)
from repro.lowmem.runner import LowMemoryReport, delta_plus_one_coloring_low_memory

__all__ = [
    "Workspace",
    "WorkspaceOverflowError",
    "ag_step_low_memory",
    "linial_step_low_memory",
    "standard_reduction_step_low_memory",
    "LowMemoryReport",
    "delta_plus_one_coloring_low_memory",
]
