"""Streaming, O(1)-word implementations of the pipeline's three steps.

Each function receives the vertex's own color, a zero-argument factory
returning a fresh iterator over the neighbor message buffers (the model
allows re-reading them), and the :class:`~repro.lowmem.workspace.Workspace`
to account every live local value in.  None of them ever materializes a
neighborhood-sized structure.
"""

from repro.lowmem.workspace import Workspace, bits_for_range

__all__ = [
    "ag_step_low_memory",
    "linial_step_low_memory",
    "standard_reduction_step_low_memory",
]


def ag_step_low_memory(color, buffers, q, workspace):
    """The AG step with own pair + one streamed neighbor + a flag.

    ``color`` and the buffered neighbor colors are AG pairs ``(a, b)``.
    """
    workspace.put("a", color[0], bits_for_range(q))
    workspace.put("b", color[1], bits_for_range(q))
    workspace.put("conflict", 0, 1)
    for neighbor in buffers():
        # One buffered pair is inspected at a time; only its b matters.
        workspace.put("nb", neighbor[1], bits_for_range(q))
        if workspace.get("nb") == workspace.get("b"):
            workspace.put("conflict", 1, 1)
        workspace.free("nb")
    a, b = workspace.get("a"), workspace.get("b")
    if workspace.get("conflict"):
        result = (a, (b + a) % q)
    else:
        result = (0, b)
    workspace.free_all()
    return result


def linial_step_low_memory(color, buffers, q, degree, workspace):
    """Linial's step exactly as sketched at the end of Section 3.

    For each candidate point ``x``: compute ``g(x)`` (own polynomial = own
    color's base-q digits, recomputed digit by digit — never stored whole
    beyond the color itself), then stream the neighbor colors, evaluating
    each neighbor's polynomial at ``x`` one at a time and comparing.  The
    first ``x`` where all comparisons differ yields the new color
    ``x * q + g(x)``.
    """

    def eval_digits(value, x):
        # Horner on base-q digits, high to low, using O(1) extra registers.
        workspace.put("acc", 0, bits_for_range(q))
        for position in range(degree, -1, -1):
            digit = (value // (q ** position)) % q
            workspace.put("digit", digit, bits_for_range(q))
            workspace.put(
                "acc",
                (workspace.get("acc") * x + workspace.get("digit")) % q,
                bits_for_range(q),
            )
            workspace.free("digit")
        result = workspace.get("acc")
        workspace.free("acc")
        return result

    workspace.put("color", color, bits_for_range(q ** (degree + 1)))
    for x in range(q):
        workspace.put("x", x, bits_for_range(q))
        workspace.put("gx", eval_digits(color, x), bits_for_range(q))
        ok = True
        for neighbor in buffers():
            if neighbor == color:
                continue
            workspace.put("nval", eval_digits(neighbor, x), bits_for_range(q))
            if workspace.get("nval") == workspace.get("gx"):
                ok = False
            workspace.free("nval")
            if not ok:
                break
        if ok:
            new_color = x * q + workspace.get("gx")
            workspace.free_all()
            return new_color
        workspace.free("gx")
        workspace.free("x")
    workspace.free_all()
    raise ValueError("no conflict-free point — field under-sized")


def standard_reduction_step_low_memory(
    color, buffers, acting_color, target, workspace
):
    """Standard reduction without the Delta-sized forbidden set.

    A vertex of the acting class scans candidates ``0..target-1``; for each
    it re-streams the buffers looking for a match.  O(1) words, O(Delta)
    buffer re-reads per round (free in the message-passing model).
    """
    workspace.put("color", color, bits_for_range(max(2, acting_color + 1)))
    if color != acting_color or color < target:
        workspace.free_all()
        return color
    for candidate in range(target):
        workspace.put("candidate", candidate, bits_for_range(target))
        taken = False
        for neighbor in buffers():
            workspace.put("ncolor", neighbor, bits_for_range(max(2, acting_color + 1)))
            if workspace.get("ncolor") == workspace.get("candidate"):
                taken = True
            workspace.free("ncolor")
            if taken:
                break
        if not taken:
            result = workspace.get("candidate")
            workspace.free_all()
            return result
        workspace.free("candidate")
    workspace.free_all()
    raise AssertionError("no free color among target palette")
