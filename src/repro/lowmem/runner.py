"""Run the full Corollary 3.6 pipeline through the metered O(1)-word steps.

The synchronous loop mirrors :class:`~repro.runtime.engine.ColoringEngine`,
but every per-vertex computation goes through streaming steps and a
:class:`~repro.lowmem.workspace.Workspace`, and the report carries the peak
per-vertex memory in bits and in Theta(log n)-bit words — the executable
form of the paper's "O(1) words of local memory" claim.
"""

from repro.core.ag import ag_prime_for
from repro.linial.plan import linial_plan
from repro.lowmem.steps import (
    ag_step_low_memory,
    linial_step_low_memory,
    standard_reduction_step_low_memory,
)
from repro.lowmem.workspace import Workspace, bits_for_range
from repro.runtime.results import Result

__all__ = ["LowMemoryReport", "delta_plus_one_coloring_low_memory"]


class LowMemoryReport:
    """Outcome of a low-memory pipeline run."""

    def __init__(self, colors, rounds, peak_bits, word_bits):
        self.colors = colors
        self.rounds = rounds
        self.peak_bits = peak_bits
        self.word_bits = word_bits

    @property
    def peak_words(self):
        """Peak workspace usage in Theta(log n)-bit words."""
        return -(-self.peak_bits // max(1, self.word_bits))

    @property
    def num_colors(self):
        """Distinct colors in the final coloring."""
        return len(set(self.colors))

    def to_dict(self):
        """JSON-serializable summary."""
        return {
            "colors": list(self.colors),
            "rounds": self.rounds,
            "peak_bits": self.peak_bits,
            "word_bits": self.word_bits,
            "peak_words": self.peak_words,
        }

    def __repr__(self):
        return "LowMemoryReport(rounds=%d, peak=%d bits = %d words of %d bits)" % (
            self.rounds,
            self.peak_bits,
            self.peak_words,
            self.word_bits,
        )


Result.register(LowMemoryReport)


def _synchronous_round(graph, colors, step):
    """Apply ``step(v, color, buffers)`` to all vertices simultaneously."""
    current = list(colors)

    def make_buffers(v):
        def buffers():
            return iter([current[u] for u in graph.neighbors(v)])

        return buffers

    return [step(v, current[v], make_buffers(v)) for v in graph.vertices()]


def delta_plus_one_coloring_low_memory(graph, bit_limit=None):
    """Corollary 3.6 with metered O(1)-word per-vertex memory.

    Returns a :class:`LowMemoryReport`; ``bit_limit`` optionally *enforces*
    a hard workspace budget (a too-small budget raises
    :class:`~repro.lowmem.workspace.WorkspaceOverflowError`, proving the
    meter is live).
    """
    n = graph.n
    delta = graph.max_degree
    word_bits = bits_for_range(max(2, n))
    workspace = Workspace(bit_limit=bit_limit)
    colors = list(range(n))
    rounds = 0

    # Stage 1: Linial, one planned iteration per round.
    plan = linial_plan(max(2, n), delta)
    palette = max(2, n)
    for iteration in plan:
        colors = _synchronous_round(
            graph,
            colors,
            lambda v, c, buffers: linial_step_low_memory(
                c, buffers, iteration.q, iteration.degree, workspace
            ),
        )
        palette = iteration.out_palette
        rounds += 1

    # Stage 2: AG on pairs over Z_q.
    q = ag_prime_for(palette, delta)
    pairs = [(c // q, c % q) for c in colors]
    for _ in range(q):
        if all(a == 0 for a, _ in pairs):
            break
        pairs = _synchronous_round(
            graph,
            pairs,
            lambda v, c, buffers: ag_step_low_memory(c, buffers, q, workspace),
        )
        rounds += 1
    colors = [b for _, b in pairs]
    palette = q

    # Stage 3: standard reduction to Delta + 1.
    target = delta + 1
    for t in range(max(0, palette - target)):
        acting = palette - 1 - t
        colors = _synchronous_round(
            graph,
            colors,
            lambda v, c, buffers: standard_reduction_step_low_memory(
                c, buffers, acting, target, workspace
            ),
        )
        rounds += 1

    return LowMemoryReport(colors, rounds, workspace.peak_bits, word_bits)
