"""An explicit, metered register file for the O(1)-memory arguments.

All vertex-local state a low-memory step keeps must live in a
:class:`Workspace`: values are ``put`` with an explicit bit width and
``free``d when dead.  The workspace records the peak number of live bits, so
a test can assert the paper's claim — peak bits = O(word size), i.e. O(1)
words of Theta(log n) bits each — on actual executions, for growing ``n``
and ``Delta``.

Read-only message buffers (the per-neighbor inbox of the model) are *not*
workspace: the model provides them for free and allows re-reading.
"""

import math

__all__ = ["Workspace", "WorkspaceOverflowError", "bits_for_range"]


def bits_for_range(size):
    """Bits needed to store a value in ``range(size)``."""
    return max(1, math.ceil(math.log2(max(2, size))))


class WorkspaceOverflowError(RuntimeError):
    """A step exceeded its declared workspace budget."""


class Workspace:
    """A register file with peak-live-bits metering.

    Parameters
    ----------
    bit_limit:
        Optional hard budget; exceeding it raises
        :class:`WorkspaceOverflowError` immediately (used by tests to *prove*
        a step never needs more).
    """

    def __init__(self, bit_limit=None):
        self.bit_limit = bit_limit
        self._registers = {}
        self._bits = {}
        self.live_bits = 0
        self.peak_bits = 0

    def put(self, name, value, bits):
        """Store ``value`` under ``name``, accounting ``bits`` of memory."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if name in self._registers:
            self.live_bits -= self._bits[name]
        self._registers[name] = value
        self._bits[name] = bits
        self.live_bits += bits
        if self.live_bits > self.peak_bits:
            self.peak_bits = self.live_bits
        if self.bit_limit is not None and self.live_bits > self.bit_limit:
            raise WorkspaceOverflowError(
                "live bits %d exceed the budget %d (registers: %s)"
                % (self.live_bits, self.bit_limit, sorted(self._registers))
            )
        return value

    def get(self, name):
        """Read a live register."""
        return self._registers[name]

    def free(self, name):
        """Drop a register (no-op if absent)."""
        if name in self._registers:
            self.live_bits -= self._bits.pop(name)
            del self._registers[name]

    def free_all(self):
        """Drop every register (end of a step)."""
        self._registers.clear()
        self._bits.clear()
        self.live_bits = 0

    def peak_words(self, word_bits):
        """Peak usage in words of the given width."""
        return math.ceil(self.peak_bits / max(1, word_bits))

    def __contains__(self, name):
        return name in self._registers

    def __repr__(self):
        return "Workspace(live=%d bits, peak=%d bits)" % (
            self.live_bits,
            self.peak_bits,
        )
