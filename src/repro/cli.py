"""Command-line interface.

Examples::

    repro-coloring color --family regular --n 96 --degree 8 --algorithm exact
    repro-coloring color --family gnp --n 80 --prob 0.1 --set-local
    repro-coloring color --n 2000 --degree 32 --telemetry run.jsonl
    repro-coloring color --n 500 --degree 8 --seeds 4 --workers 4
    repro-coloring sweep --n 200,500 --degree 8,16 --seeds 3 --workers 4
    repro-coloring edge-color --family regular --n 64 --degree 6
    repro-coloring mis --family grid --rows 8 --cols 9
    repro-coloring selfstab --n 40 --delta 6 --corruptions 12 --churn 2
    repro-coloring obs summary run.jsonl
    repro-coloring obs timeline run.jsonl -o trace.json
    repro-coloring serve --db registry.sqlite --socket svc.sock
    repro-coloring submit --address unix:svc.sock --n 256 --degree 8 --wait
    repro-coloring runs --address unix:svc.sock --status done --limit 10
    repro-coloring rerun 3 --address unix:svc.sock --wait
    repro-coloring tail 3 --address unix:svc.sock --follow
"""

import argparse
import contextlib
import os
import sys

from repro import graphgen, obs
from repro.analysis import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    is_proper_edge_coloring,
)
from repro.apps import locally_iterative_maximal_matching, locally_iterative_mis
from repro.mathutil import log_star
from repro.recipes import (
    delta_plus_one_coloring,
    delta_plus_one_exact_no_reduction,
    one_plus_eps_delta_coloring,
)
from repro.edge import edge_coloring_congest
from repro.runtime import Visibility
from repro.runtime.backends import backend_names

__all__ = ["main", "build_parser"]

#: CLI algorithm name -> parallel-registry algorithm name.
_JOB_ALGORITHMS = {"cor36": "cor36", "exact": "exact", "sublinear": "one-plus-eps"}


def _add_graph_arguments(parser):
    parser.add_argument(
        "--family",
        choices=["regular", "gnp", "cycle", "path", "grid", "unit-disk", "tree"],
        default="regular",
        help="workload graph family",
    )
    parser.add_argument("--n", type=int, default=64, help="number of vertices")
    parser.add_argument("--degree", type=int, default=6, help="degree (regular)")
    parser.add_argument("--prob", type=float, default=0.1, help="edge prob (gnp)")
    parser.add_argument("--rows", type=int, default=8, help="grid rows")
    parser.add_argument("--cols", type=int, default=8, help="grid cols")
    parser.add_argument("--radius", type=float, default=0.15, help="unit-disk radius")
    parser.add_argument("--seed", type=int, default=1, help="generator seed")


def _build_graph(args):
    if args.family == "regular":
        return graphgen.random_regular(args.n, args.degree, seed=args.seed)
    if args.family == "gnp":
        return graphgen.gnp_graph(args.n, args.prob, seed=args.seed)
    if args.family == "cycle":
        return graphgen.cycle_graph(args.n)
    if args.family == "path":
        return graphgen.path_graph(args.n)
    if args.family == "grid":
        return graphgen.grid_graph(args.rows, args.cols)
    if args.family == "unit-disk":
        return graphgen.unit_disk_graph(args.n, args.radius, seed=args.seed)
    if args.family == "tree":
        return graphgen.random_tree(args.n, seed=args.seed)
    raise ValueError("unknown family %r" % args.family)


@contextlib.contextmanager
def _telemetry_sink(args, out):
    """Collect telemetry for one command when ``--telemetry PATH`` is given.

    Installs a live collector around the command body, then writes the JSONL
    event stream (plus the aggregate snapshot line) to the requested path.
    ``--profile`` additionally sets ``REPRO_PROFILE=1`` in the environment —
    forked workers inherit it — and runs the sampling profiler over the
    parent process, flushing its samples into the same stream.
    """
    profiling = getattr(args, "profile", False)
    saved = os.environ.get("REPRO_PROFILE")
    if profiling:
        os.environ["REPRO_PROFILE"] = "1"
    try:
        path = getattr(args, "telemetry", None)
        if not path:
            yield
            return
        with obs.capture() as telemetry:
            profiler = obs.maybe_profiler(telemetry)
            try:
                yield
            finally:
                if profiler is not None:
                    profiler.stop()
        lines = obs.write_jsonl(telemetry, path)
        if not getattr(args, "json", False):
            out.write("telemetry: wrote %d records to %s\n" % (lines, path))
    finally:
        if profiling:
            if saved is None:
                os.environ.pop("REPRO_PROFILE", None)
            else:
                os.environ["REPRO_PROFILE"] = saved


def _graph_spec(args):
    """The :func:`repro.parallel.build_graph` dict matching ``args``."""
    spec = {"family": args.family, "n": args.n, "seed": args.seed}
    if args.family == "regular":
        spec["degree"] = args.degree
    elif args.family == "gnp":
        spec["prob"] = args.prob
    elif args.family == "grid":
        spec["rows"], spec["cols"] = args.rows, args.cols
    elif args.family == "unit-disk":
        spec["radius"] = args.radius
    return spec


def _add_oocore_arguments(parser):
    parser.add_argument(
        "--oocore",
        action="store_true",
        help="run out of core: stream the graph into memory-mapped CSR "
        "shards and use the partition-aware engine (backend=oocore)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="shard count for --oocore (default: a slot-volume heuristic, "
        "env REPRO_OOCORE_SHARDS)",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="resident-byte budget for --oocore, e.g. 2G or 512M "
        "(env REPRO_OOCORE_BUDGET); the engine refuses runs that "
        "would not fit",
    )


def _apply_oocore_args(args):
    """Fold --oocore/--shards/--memory-budget into the backend + env knobs.

    The env variables are the single source of truth the oocore tier reads
    (so jobs forked by the runner inherit them); the flags just set them.
    """
    if getattr(args, "shards", None):
        os.environ["REPRO_OOCORE_SHARDS"] = str(args.shards)
    if getattr(args, "memory_budget", None):
        from repro.oocore.store import parse_bytes

        os.environ["REPRO_OOCORE_BUDGET"] = str(parse_bytes(args.memory_budget))
    if getattr(args, "oocore", False):
        args.backend = "oocore"


def _print_outcomes(args, out, outcomes):
    """Render a list of job outcomes (table or JSON); returns the exit code."""
    failures = [o for o in outcomes if not o.ok]
    if args.json:
        import json

        out.write(json.dumps([o.to_dict() for o in outcomes], indent=2) + "\n")
        return 1 if failures else 0
    for o in outcomes:
        if o.ok:
            out.write(
                "%-40s ok  rounds=%-5d colors=%-4d %.3fs\n"
                % (o.spec.job_id, o.rounds, o.num_colors, o.seconds)
            )
        else:
            state = "timeout" if o.timed_out else o.error["kind"]
            out.write(
                "%-40s FAILED (%s, %d attempts)\n" % (o.spec.job_id, state, o.attempts)
            )
    out.write(
        "jobs: %d ok, %d failed\n" % (len(outcomes) - len(failures), len(failures))
    )
    return 1 if failures else 0


def _cmd_color_jobs(args, out, workers):
    """The sharded fan-out path of ``color`` (``--workers`` / ``--seeds``)."""
    from repro import parallel

    if args.set_local:
        out.write("error: --set-local is not supported with --workers/--seeds\n")
        return 2
    algorithm = _JOB_ALGORITHMS[args.algorithm]
    specs = []
    for seed in range(args.seed, args.seed + args.seeds):
        graph = dict(_graph_spec(args), seed=seed)
        specs.append(
            parallel.JobSpec(
                algorithm=algorithm, graph=graph, backend=args.backend, seed=seed
            )
        )
    with _telemetry_sink(args, out):
        outcomes = parallel.run_many(specs, workers=workers)
    return _print_outcomes(args, out, outcomes)


def _cmd_color(args, out):
    _apply_oocore_args(args)
    workers = args.workers if args.workers is not None else 1
    if workers > 1 or args.seeds > 1:
        return _cmd_color_jobs(args, out, workers)
    if args.backend == "oocore":
        from repro.oocore.writers import ensure_sharded

        graph = ensure_sharded(_graph_spec(args), shards=args.shards)
    else:
        graph = _build_graph(args)
    visibility = Visibility.SET_LOCAL if args.set_local else None
    with _telemetry_sink(args, out):
        if args.algorithm == "cor36":
            result = delta_plus_one_coloring(
                graph, visibility=visibility, backend=args.backend
            )
            colors, rounds = result.colors, result.rounds_by_stage()
        elif args.algorithm == "exact":
            result = delta_plus_one_exact_no_reduction(
                graph, visibility=visibility, backend=args.backend
            )
            colors, rounds = result.colors, result.rounds_by_stage()
        else:  # sublinear
            result = one_plus_eps_delta_coloring(graph, backend=args.backend)
            colors, rounds = result.colors, result.stage_rounds
    assert is_proper_coloring(graph, colors)
    if args.json:
        import json

        out.write(json.dumps(result.to_dict(), indent=2) + "\n")
        return 0
    out.write(
        "graph: n=%d m=%d Delta=%d (log* n = %d)\n"
        % (graph.n, graph.m, graph.max_degree, log_star(graph.n))
    )
    out.write("colors used: %d\n" % len(set(colors)))
    out.write("max color:   %d\n" % (max(colors) if colors else 0))
    for stage, r in rounds.items():
        out.write("rounds[%s] = %d\n" % (stage, r))
    out.write("total rounds: %d\n" % sum(rounds.values()))
    return 0


def _cmd_edge_color(args, out):
    graph = _build_graph(args)
    result = edge_coloring_congest(graph, exact=not args.no_exact)
    assert is_proper_edge_coloring(graph, result.edge_colors)
    if args.json:
        import json

        out.write(json.dumps(result.to_dict(), indent=2) + "\n")
        return 0
    out.write(
        "graph: n=%d m=%d Delta=%d\n" % (graph.n, graph.m, graph.max_degree)
    )
    out.write(
        "edge colors: %d (palette %d, 2*Delta-1 = %d)\n"
        % (result.num_colors, result.palette_size, max(1, 2 * graph.max_degree - 1))
    )
    out.write("CONGEST rounds: %d\n" % result.total_rounds)
    out.write("bits per edge:  %d\n" % result.total_bits_per_edge)
    out.write("max message:    %d bits\n" % result.max_message_bits)
    return 0


def _cmd_mis(args, out):
    graph = _build_graph(args)
    result = locally_iterative_mis(graph)
    assert is_maximal_independent_set(graph, result.members)
    out.write("graph: n=%d m=%d Delta=%d\n" % (graph.n, graph.m, graph.max_degree))
    out.write("MIS size: %d\n" % len(result.members))
    out.write("rounds: %d (coloring %d + sweep %d)\n"
              % (result.total_rounds, result.coloring_rounds, result.sweep_rounds))
    return 0


def _cmd_matching(args, out):
    graph = _build_graph(args)
    result = locally_iterative_maximal_matching(graph)
    assert is_maximal_matching(graph, result.edges)
    out.write("graph: n=%d m=%d Delta=%d\n" % (graph.n, graph.m, graph.max_degree))
    out.write("matching size: %d\n" % len(result.edges))
    out.write("rounds: %d (edge coloring %d + sweep %d)\n"
              % (result.total_rounds, result.coloring_rounds, result.sweep_rounds))
    return 0


def _cmd_trace(args, out):
    from repro.core import (
        AdditiveGroupColoring,
        ExactDeltaPlusOneHybrid,
        ThreeDimensionalAG,
    )
    from repro.runtime.backends import resolve_backend
    from repro.trace import format_trace, trace_run

    graph = _build_graph(args)
    initial = list(range(graph.n))
    palette = graph.n
    if args.stage == "hybrid":
        # The hybrid wants a near-(2 Delta)-sized palette: AG first.
        engine = resolve_backend("engine", args.backend)(graph)
        ag = AdditiveGroupColoring()
        pre = engine.run(ag, initial)
        initial, palette = pre.int_colors, ag.out_palette_size
        stage = ExactDeltaPlusOneHybrid()
    elif args.stage == "3ag":
        stage = ThreeDimensionalAG()
    else:
        stage = AdditiveGroupColoring()
    trace = trace_run(
        graph, stage, initial, in_palette_size=palette, backend=args.backend
    )
    out.write(format_trace(trace, graph, title="%s stage" % args.stage) + "\n")
    return 0


def _cmd_selfstab(args, out):
    import random

    from repro.runtime.backends import resolve_backend
    from repro.runtime.graph import DynamicGraph
    from repro.selfstab import FaultCampaign, SelfStabExactColoring

    rng = random.Random(args.seed)
    graph = DynamicGraph(args.n, args.delta)
    for v in range(args.n):
        graph.add_vertex(v)
    for u in range(args.n):
        for v in range(u + 1, args.n):
            if (
                rng.random() < args.prob
                and graph.degree(u) < args.delta
                and graph.degree(v) < args.delta
            ):
                graph.add_edge(u, v)

    algorithm = SelfStabExactColoring(args.n, args.delta)
    engine = resolve_backend("selfstab", args.backend)(graph, algorithm)
    with _telemetry_sink(args, out):
        rounds = engine.run_to_quiescence()
        out.write("cold start: stabilized in %d rounds (bound budget %d)\n"
                  % (rounds, algorithm.stabilization_bound()))
        campaign = FaultCampaign(args.seed)
        for burst in range(args.bursts):
            campaign.corrupt_random_rams(engine, args.corruptions)
            if args.churn:
                campaign.churn_edges(engine, removals=args.churn, additions=args.churn)
            rounds = engine.run_to_quiescence()
            out.write("burst %d: re-stabilized in %d rounds (legal: %s)\n"
                      % (burst + 1, rounds, engine.is_legal()))
    colors = algorithm.final_colors(graph, engine.rams)
    palette = (max(colors.values()) + 1) if colors else 0
    out.write("final palette: %d <= Delta+1 = %d\n" % (palette, args.delta + 1))
    return 0


def _cmd_sweep(args, out):
    """Run an ``ns x degrees x seeds`` grid through the sharded job runner."""
    from repro import parallel

    _apply_oocore_args(args)

    ns = [int(value) for value in args.n.split(",")]
    degrees = [int(value) for value in args.degree.split(",")]
    seeds = list(range(args.seed, args.seed + args.seeds))
    with _telemetry_sink(args, out):
        outcomes = parallel.run_sweep(
            ns,
            degrees,
            seeds,
            algorithm=args.algorithm,
            backend=args.backend,
            family=args.family,
            params={"k": args.k} if getattr(args, "k", None) else None,
            workers=args.workers if args.workers is not None else 1,
            timeout=args.timeout,
            retries=args.retries,
        )
    return _print_outcomes(args, out, outcomes)


def _load_records(paths):
    """Records from one or more telemetry JSONL files (``-`` reads stdin).

    A single input is returned verbatim.  Several inputs are merged through a
    fresh :class:`~repro.obs.Telemetry` via :meth:`~repro.obs.Telemetry.absorb`
    — snapshots fold together, events re-sequence while keeping their original
    flight-recorder stamps — so a parent stream plus per-worker streams read
    as one coherent run.
    """
    batches = [
        obs.read_jsonl(sys.stdin if path == "-" else path) for path in paths
    ]
    if len(batches) == 1:
        return batches[0]
    merged = obs.Telemetry()
    for batch in batches:
        merged.absorb(batch)
    return list(merged.events) + [merged.snapshot()]


def _client(args):
    """A :class:`~repro.service.client.ServiceClient` for ``--address``."""
    from repro.service.client import ServiceClient

    return ServiceClient(args.address)


def _print_run_record(args, out, record):
    """Render one run record (one table line, or JSON with ``--json``)."""
    if args.json:
        import json

        out.write(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return
    summary = record.get("summary") or {}
    detail = ""
    if record["status"] == "done":
        detail = " rounds=%-5s colors=%-4s" % (
            summary.get("rounds"),
            summary.get("num_colors"),
        )
    elif record.get("error"):
        detail = " %s" % record["error"]["kind"]
    out.write(
        "run %-4d %-8s %-40s%s\n"
        % (record["id"], record["status"], record["job_id"], detail)
    )


def _service_errors(out):
    """Context manager mapping daemon/transport errors to exit-code prose."""
    import contextlib as _contextlib

    @_contextlib.contextmanager
    def _guard():
        from repro.service.client import ServiceError

        try:
            yield
        except ServiceError as exc:
            out.write("error: %s\n" % exc)
            raise SystemExit(1)
        except (ConnectionError, FileNotFoundError, OSError) as exc:
            out.write("error: cannot reach the service: %s\n" % exc)
            raise SystemExit(1)

    return _guard()


def _cmd_serve(args, out):
    """``repro-coloring serve`` — run the experiment daemon until interrupted."""
    from repro.service.app import serve

    def _ready(address):
        out.write("serving on %s (registry %s)\n" % (address, args.db))
        out.flush()

    serve(
        args.db,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        telemetry_dir=args.telemetry_dir,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        mode=args.mode,
        verbose=args.verbose,
        ready=_ready,
    )
    return 0


def _cmd_submit(args, out):
    """``repro-coloring submit`` — queue one job on a running daemon."""
    spec = {
        "algorithm": args.algorithm,
        "graph": _graph_spec(args),
        "backend": args.backend,
        "seed": args.seed,
    }
    if args.label:
        spec["label"] = args.label
    with _service_errors(out):
        record = _client(args).submit(spec, wait=args.wait, timeout=args.wait_timeout)
    _print_run_record(args, out, record)
    return 0 if record["status"] in ("queued", "running", "done") else 1


def _cmd_runs(args, out):
    """``repro-coloring runs`` — list/filter the daemon's run registry."""
    with _service_errors(out):
        records = _client(args).runs(
            algorithm=args.algorithm,
            n=args.n,
            delta=args.delta,
            status=args.status,
            since=args.since,
            job_id=args.job_id,
            limit=args.limit,
        )
    if args.json:
        import json

        out.write(json.dumps(records, indent=2, sort_keys=True) + "\n")
        return 0
    for record in records:
        _print_run_record(args, out, record)
    out.write("%d run(s)\n" % len(records))
    return 0


def _cmd_rerun(args, out):
    """``repro-coloring rerun`` — re-execute a stored run by id or job id."""
    with _service_errors(out):
        record = _client(args).rerun(args.ref, wait=args.wait, timeout=args.wait_timeout)
    _print_run_record(args, out, record)
    return 0 if record["status"] in ("queued", "running", "done") else 1


def _cmd_tail(args, out):
    """``repro-coloring tail`` — stream a run's telemetry JSONL records."""
    import json

    with _service_errors(out):
        for record in _client(args).tail(args.ref, follow=args.follow):
            out.write(json.dumps(record, sort_keys=True) + "\n")
            out.flush()
    return 0


def _cmd_obs_summary(args, out):
    records = _load_records(args.paths)
    out.write(obs.summary_table(records))
    return 0


def _cmd_obs_timeline(args, out):
    records = _load_records(args.paths)
    if args.output and args.output != "-":
        events = obs.write_chrome_trace(records, args.output)
        out.write("timeline: wrote %d trace events to %s\n" % (events, args.output))
    else:
        obs.write_chrome_trace(records, out)
    return 0


def _cmd_obs_prom(args, out):
    records = obs.read_jsonl(args.path)
    snapshots = [r for r in records if r.get("type") == "snapshot"]
    if not snapshots:
        out.write("no snapshot record in %s\n" % args.path)
        return 1
    out.write(obs.prometheus_text(snapshots[-1]))
    return 0


def build_parser():
    """Construct the argparse parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-coloring",
        description="Locally-iterative distributed coloring (PODC'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    color = sub.add_parser("color", help="(Delta+1)-vertex-coloring")
    _add_graph_arguments(color)
    color.add_argument(
        "--algorithm",
        choices=["cor36", "exact", "sublinear"],
        default="cor36",
        help="cor36 = Linial+AG+reduction; exact = Section 7 hybrid; "
        "sublinear = Theorem 6.4 arbdefective route",
    )
    color.add_argument(
        "--set-local", action="store_true", help="run in the SET-LOCAL model"
    )
    color.add_argument(
        "--backend",
        choices=backend_names("engine"),
        default="auto",
        help="engine backend: auto picks the vectorized NumPy engine when "
        "available (install with `pip install repro[fast]`)",
    )
    color.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard across N worker processes (with --seeds > 1)",
    )
    color.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="K",
        help="run K seeds (seed, seed+1, ...) through the job runner",
    )
    color.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    color.add_argument(
        "--telemetry",
        metavar="PATH",
        help="collect structured telemetry for the run and write it as "
        "JSONL to PATH (inspect with `repro-coloring obs summary PATH`)",
    )
    color.add_argument(
        "--profile",
        action="store_true",
        help="enable the sampling profiler (REPRO_PROFILE=1) in this process "
        "and every worker; samples land in the --telemetry stream",
    )
    _add_oocore_arguments(color)
    color.set_defaults(func=_cmd_color)

    sweep = sub.add_parser(
        "sweep", help="parameter sweep through the sharded job runner"
    )
    sweep.add_argument(
        "--n", default="64,128", help="comma-separated vertex counts"
    )
    sweep.add_argument("--degree", default="6", help="comma-separated degrees")
    sweep.add_argument("--seeds", type=int, default=1, metavar="K",
                       help="seeds per grid point (seed, seed+1, ...)")
    sweep.add_argument("--seed", type=int, default=1, help="first seed")
    sweep.add_argument(
        "--family",
        choices=["regular", "gnp", "cycle", "path", "tree"],
        default="regular",
        help="workload graph family",
    )
    sweep.add_argument(
        "--algorithm",
        default="cor36",
        help="job algorithm name (see repro.parallel.algorithm_names)",
    )
    sweep.add_argument(
        "--backend", choices=backend_names("engine"), default="auto",
        help="engine backend for every job",
    )
    sweep.add_argument(
        "--k", type=int, default=None, metavar="K",
        help="Maus tradeoff knob for the sublinear family: O(k*Delta) "
             "colors against O(Delta/k) + log*(n) rounds (algorithms "
             "one-plus-eps, sublinear, defective)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker process count",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (process mode only)",
    )
    sweep.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for a failed or timed-out job",
    )
    sweep.add_argument(
        "--json", action="store_true", help="emit every outcome as JSON"
    )
    sweep.add_argument(
        "--telemetry",
        metavar="PATH",
        help="write the merged parent+worker telemetry stream to PATH",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="enable the sampling profiler (REPRO_PROFILE=1) in this process "
        "and every worker; samples land in the --telemetry stream",
    )
    _add_oocore_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    edge = sub.add_parser("edge-color", help="(2*Delta-1)-edge-coloring (CONGEST)")
    _add_graph_arguments(edge)
    edge.add_argument(
        "--no-exact", action="store_true", help="stop at O(Delta) colors"
    )
    edge.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    edge.set_defaults(func=_cmd_edge_color)

    mis = sub.add_parser("mis", help="maximal independent set")
    _add_graph_arguments(mis)
    mis.set_defaults(func=_cmd_mis)

    matching = sub.add_parser("matching", help="maximal matching")
    _add_graph_arguments(matching)
    matching.set_defaults(func=_cmd_matching)

    trace = sub.add_parser("trace", help="round-by-round trace of the AG stage")
    _add_graph_arguments(trace)
    trace.add_argument(
        "--stage",
        choices=["ag", "3ag", "hybrid"],
        default="ag",
        help="which AG-family stage to trace",
    )
    trace.add_argument(
        "--backend",
        choices=backend_names("engine"),
        default="auto",
        help="engine backend used to record the trace (histories are "
        "bit-for-bit identical across backends)",
    )
    trace.set_defaults(func=_cmd_trace)

    selfstab = sub.add_parser("selfstab", help="self-stabilizing coloring demo")
    selfstab.add_argument("--n", type=int, default=40)
    selfstab.add_argument("--delta", type=int, default=6)
    selfstab.add_argument("--prob", type=float, default=0.15)
    selfstab.add_argument("--seed", type=int, default=1)
    selfstab.add_argument("--bursts", type=int, default=3)
    selfstab.add_argument("--corruptions", type=int, default=10)
    selfstab.add_argument("--churn", type=int, default=0)
    selfstab.add_argument(
        "--backend",
        choices=backend_names("selfstab"),
        default="auto",
        help="self-stabilization engine backend: auto picks the vectorized "
        "NumPy engine when available",
    )
    selfstab.add_argument(
        "--telemetry",
        metavar="PATH",
        help="collect structured telemetry for the demo and write it as "
        "JSONL to PATH",
    )
    selfstab.add_argument(
        "--profile",
        action="store_true",
        help="enable the sampling profiler (REPRO_PROFILE=1) for the demo; "
        "samples land in the --telemetry stream",
    )
    selfstab.set_defaults(func=_cmd_selfstab)

    serve = sub.add_parser(
        "serve", help="run the experiment daemon over a durable run registry"
    )
    serve.add_argument(
        "--db", default="registry.sqlite", metavar="PATH",
        help="SQLite run-registry file (created, with migrations, on first use)",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on a unix domain socket instead of TCP",
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    serve.add_argument("--port", type=int, default=8357, help="TCP bind port")
    serve.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="per-run telemetry JSONL directory (default: telemetry/ beside --db)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the daemon's job runner",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (process mode only)",
    )
    serve.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for a failed or timed-out job",
    )
    serve.add_argument(
        "--mode", choices=["auto", "process", "inline"], default="auto",
        help="job-runner execution mode",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.set_defaults(func=_cmd_serve)

    def _add_client_arguments(client_parser):
        client_parser.add_argument(
            "--address", default="127.0.0.1:8357", metavar="ADDR",
            help="daemon address: host:port or unix:PATH",
        )

    submit = sub.add_parser("submit", help="queue one job on a running daemon")
    _add_client_arguments(submit)
    _add_graph_arguments(submit)
    submit.add_argument(
        "--algorithm", default="cor36",
        help="job algorithm name (see repro.api.algorithm_names)",
    )
    submit.add_argument(
        "--backend", default="auto", help="engine backend for the job"
    )
    submit.add_argument("--label", default=None, help="explicit job id")
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the run is terminal and print the finished record",
    )
    submit.add_argument(
        "--wait-timeout", type=float, default=None, metavar="SECONDS",
        help="give up waiting after this long (the run itself keeps going)",
    )
    submit.add_argument("--json", action="store_true", help="print the record as JSON")
    submit.set_defaults(func=_cmd_submit)

    runs = sub.add_parser("runs", help="list/filter the daemon's run registry")
    _add_client_arguments(runs)
    runs.add_argument("--algorithm", default=None, help="filter: algorithm name")
    runs.add_argument("--n", type=int, default=None, help="filter: vertex count")
    runs.add_argument(
        "--delta", type=int, default=None,
        help="filter: graph degree bound (the spec's degree parameter)",
    )
    runs.add_argument(
        "--status", default=None,
        choices=["queued", "running", "done", "failed", "timeout"],
        help="filter: run status",
    )
    runs.add_argument(
        "--since", type=float, default=None, metavar="EPOCH",
        help="filter: runs created at or after this unix timestamp",
    )
    runs.add_argument("--job-id", default=None, help="filter: exact job id")
    runs.add_argument("--limit", type=int, default=None, help="newest K runs only")
    runs.add_argument("--json", action="store_true", help="print records as JSON")
    runs.set_defaults(func=_cmd_runs)

    rerun = sub.add_parser(
        "rerun", help="re-execute a stored run from its registry spec"
    )
    _add_client_arguments(rerun)
    rerun.add_argument("ref", help="run id, or job-id string (latest matching run)")
    rerun.add_argument(
        "--wait", action="store_true",
        help="poll until the new run is terminal and print the finished record",
    )
    rerun.add_argument(
        "--wait-timeout", type=float, default=None, metavar="SECONDS",
        help="give up waiting after this long (the run itself keeps going)",
    )
    rerun.add_argument("--json", action="store_true", help="print the record as JSON")
    rerun.set_defaults(func=_cmd_rerun)

    tail = sub.add_parser("tail", help="stream a run's telemetry JSONL records")
    _add_client_arguments(tail)
    tail.add_argument("ref", help="run id, or job-id string (latest matching run)")
    tail.add_argument(
        "-f", "--follow", action="store_true",
        help="keep the stream open while the run is in flight (live tail)",
    )
    tail.set_defaults(func=_cmd_tail)

    obs_parser = sub.add_parser(
        "obs", help="inspect telemetry JSONL files written by --telemetry"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary", help="human-readable summary of a telemetry stream"
    )
    obs_summary.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="telemetry JSONL file(s); '-' reads stdin, several files are "
        "merged into one stream",
    )
    obs_summary.set_defaults(func=_cmd_obs_summary)
    obs_timeline = obs_sub.add_parser(
        "timeline",
        help="export a Chrome-trace / Perfetto timeline (open in ui.perfetto.dev)",
    )
    obs_timeline.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="telemetry JSONL file(s); '-' reads stdin, several files are "
        "merged into one stream",
    )
    obs_timeline.add_argument(
        "-o",
        "--output",
        metavar="TRACE",
        help="write the trace JSON here instead of stdout",
    )
    obs_timeline.set_defaults(func=_cmd_obs_timeline)
    obs_prom = obs_sub.add_parser(
        "prom", help="Prometheus text exposition of the aggregate snapshot"
    )
    obs_prom.add_argument("path", help="telemetry JSONL file")
    obs_prom.set_defaults(func=_cmd_obs_prom)

    return parser


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out or sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
