"""Polynomials over the prime field GF(q).

Linial's algorithm (and its Excl-/Mod- variants in Section 4) encode each
color ``c`` as a polynomial ``g_c`` of degree ``d`` over ``GF(q)`` and have a
vertex pick a point ``(x, g_c(x))`` that no neighbor's polynomial passes
through.  Two distinct degree-``d`` polynomials agree on at most ``d`` points,
so with ``q >= d * Delta + 1`` a conflict-free point always exists.

Colors map to polynomials through their base-``q`` digits, which makes the
encoding injective for ``c < q^(d+1)`` and computable with O(1) words of
memory (as the paper notes at the end of Section 3).
"""

__all__ = [
    "int_to_poly_coeffs",
    "eval_poly_mod",
    "batch_poly_coeffs",
    "batch_eval_point",
    "batch_eval_points",
    "GFPolynomial",
]


def int_to_poly_coeffs(value: int, degree: int, q: int) -> tuple:
    """Return the base-``q`` digits of ``value`` as ``degree + 1`` coefficients.

    The returned tuple ``(c_0, ..., c_degree)`` represents the polynomial
    ``c_0 + c_1 x + ... + c_degree x^degree`` over GF(q).  Distinct values
    below ``q^(degree+1)`` yield distinct coefficient tuples.

    >>> int_to_poly_coeffs(11, 2, 3)
    (2, 0, 1)
    """
    if value < 0:
        raise ValueError("polynomial encoding requires a non-negative value")
    if value >= q ** (degree + 1):
        raise ValueError(
            "value %d does not fit in %d base-%d digits" % (value, degree + 1, q)
        )
    coeffs = []
    remaining = value
    for _ in range(degree + 1):
        coeffs.append(remaining % q)
        remaining //= q
    return tuple(coeffs)


def eval_poly_mod(coeffs, x: int, q: int) -> int:
    """Evaluate the polynomial with the given coefficients at ``x`` mod ``q``.

    Uses Horner's rule; ``coeffs`` is low-order first, as produced by
    :func:`int_to_poly_coeffs`.

    >>> eval_poly_mod((2, 0, 1), 2, 3)  # 2 + 0*2 + 1*4 = 6 = 0 mod 3
    0
    """
    result = 0
    for coeff in reversed(coeffs):
        result = (result * x + coeff) % q
    return result


def batch_poly_coeffs(values, degree, q):
    """Base-``q`` digit matrix of an int64 color array (NumPy batch helper).

    Row ``v`` of the result is ``int_to_poly_coeffs(values[v], degree, q)``:
    shape ``(len(values), degree + 1)``, low-order digits first.  Callers
    must pre-validate ``0 <= values < q**(degree + 1)``; this is the
    vectorized encoder behind the batch Linial kernel, so it assumes NumPy
    is importable (the batch path never runs without it).
    """
    import numpy as np

    values = np.asarray(values, dtype=np.int64)
    coeffs = np.empty((values.shape[0], degree + 1), dtype=np.int64)
    remaining = values.copy()
    for position in range(degree + 1):
        coeffs[:, position] = remaining % q
        remaining //= q
    return coeffs


def batch_eval_point(coeffs, x, q):
    """Evaluate every row polynomial at one point mod ``q`` (Horner, one column).

    The memory-lean sibling of :func:`batch_eval_points`: callers that scan
    evaluation points with an early exit (the batch Linial kernel) allocate
    one int64 column per point instead of a ``(rows, points)`` block, which
    at out-of-core sizes is the difference between a ~40 MB and a ~GB
    transient.  Reducing mod ``q`` after every Horner step keeps every
    intermediate below ``q**2 + q`` — exact in int64 for any plannable field.
    """
    import numpy as np

    coeffs = np.asarray(coeffs, dtype=np.int64)
    if coeffs.shape[1] == 0:
        return np.zeros(coeffs.shape[0], dtype=np.int64)
    x = int(x) % q
    result = coeffs[:, -1] % q
    for position in range(coeffs.shape[1] - 2, -1, -1):
        result *= x
        result += coeffs[:, position]
        result %= q
    return result


def batch_eval_points(coeffs, points, q):
    """Evaluate every row polynomial at every point mod ``q`` (NumPy helper).

    ``result[v, j] == eval_poly_mod(coeffs[v], points[j], q)``, computed as
    one Vandermonde-style matmul ``coeffs @ [x^row mod q] mod q``.  Products
    are bounded by ``(degree + 1) * q**2``, well inside int64 for every field
    the Linial planner can emit.
    """
    import numpy as np

    coeffs = np.asarray(coeffs, dtype=np.int64)
    points = np.asarray(points, dtype=np.int64) % q
    vandermonde = np.empty((coeffs.shape[1], points.shape[0]), dtype=np.int64)
    if coeffs.shape[1]:
        vandermonde[0] = 1
    for row in range(1, coeffs.shape[1]):
        vandermonde[row] = vandermonde[row - 1] * points % q
    # Integer matmul in NumPy is a naive loop; when every dot product is
    # bounded by 2**53 the same contraction runs exactly in float64 through
    # BLAS, an order of magnitude faster.  All intermediates are integers
    # below the bound, so the rounding-free float result is exact.
    if coeffs.shape[1] * float(q - 1) ** 2 < float(2 ** 53):
        product = coeffs.astype(np.float64) @ vandermonde.astype(np.float64)
        return product.astype(np.int64) % q
    return coeffs @ vandermonde % q


class GFPolynomial:
    """A color's polynomial representative over GF(q).

    Thin immutable wrapper bundling the coefficient tuple with the field
    characteristic, used by the Linial family.
    """

    __slots__ = ("coeffs", "q")

    def __init__(self, coeffs, q: int):
        self.coeffs = tuple(c % q for c in coeffs)
        self.q = q

    @classmethod
    def from_color(cls, color: int, degree: int, q: int) -> "GFPolynomial":
        """Encode an integer color as a degree-``degree`` polynomial."""
        return cls(int_to_poly_coeffs(color, degree, q), q)

    def __call__(self, x: int) -> int:
        return eval_poly_mod(self.coeffs, x, self.q)

    @property
    def degree(self) -> int:
        """The polynomial degree (number of coefficients minus one)."""
        return len(self.coeffs) - 1

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GFPolynomial)
            and self.q == other.q
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.coeffs, self.q))

    def __repr__(self) -> str:
        return "GFPolynomial(coeffs=%r, q=%d)" % (self.coeffs, self.q)
