"""Prime generation used to size the additive groups of the AG family.

The AG algorithm (Section 3) needs a prime ``q`` with ``sqrt(k) <= q`` and
``q > 2 * Delta``; 3AG (Section 7) needs ``p >= 2*Delta + 2``; the exact
(Delta+1) construction picks a prime in ``[Delta+1, Delta+1+O(Delta^{21/40})]``
(such a prime exists by Baker-Harman-Pintz).  All of these reduce to "the
smallest prime at least x", which :func:`next_prime_at_least` provides.

Deterministic trial division is plenty here: the thresholds are O(Delta) or
O(Delta^2) with laptop-scale Delta.
"""

__all__ = ["is_prime", "next_prime", "next_prime_at_least", "primes_up_to"]


def is_prime(n: int) -> bool:
    """Return True iff ``n`` is prime (deterministic trial division).

    >>> [x for x in range(20) if is_prime(x)]
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return n > 1


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``.

    >>> next_prime(10)
    11
    >>> next_prime(13)
    17
    """
    candidate = max(2, n + 1)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def next_prime_at_least(n: int) -> int:
    """Return the smallest prime greater than or equal to ``n``.

    >>> next_prime_at_least(13)
    13
    >>> next_prime_at_least(14)
    17
    """
    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def primes_up_to(n: int) -> list:
    """Return all primes ``<= n`` via the sieve of Eratosthenes.

    >>> primes_up_to(30)
    [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
    """
    if n < 2:
        return []
    sieve = bytearray([1]) * (n + 1)
    sieve[0] = sieve[1] = 0
    p = 2
    while p * p <= n:
        if sieve[p]:
            sieve[p * p :: p] = bytearray(len(sieve[p * p :: p]))
        p += 1
    return [i for i, flag in enumerate(sieve) if flag]
