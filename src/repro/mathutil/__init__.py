"""Number-theoretic and field-arithmetic helpers used across the library.

The paper's algorithms lean on three mathematical primitives:

* the iterated logarithm ``log* n`` that shows up in every running-time bound,
* primes ``q`` chosen just above thresholds like ``2 * Delta`` so that the
  additive rotations of the AG family never revisit a residue early, and
* low-degree polynomials over ``GF(q)`` realizing Linial's cover-free set
  systems.

Everything here is deterministic and dependency-free.
"""

from repro.mathutil.logstar import log_star, tower
from repro.mathutil.primes import (
    is_prime,
    next_prime,
    next_prime_at_least,
    primes_up_to,
)
from repro.mathutil.gf import GFPolynomial, eval_poly_mod, int_to_poly_coeffs

__all__ = [
    "log_star",
    "tower",
    "is_prime",
    "next_prime",
    "next_prime_at_least",
    "primes_up_to",
    "GFPolynomial",
    "eval_poly_mod",
    "int_to_poly_coeffs",
]
