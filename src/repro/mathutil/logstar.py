"""The iterated logarithm ``log*`` and its inverse tower function.

``log* n`` is the number of times ``log2`` must be applied, starting from
``n``, until the value drops below 2.  It is the canonical additive term in
distributed symmetry-breaking bounds: Linial's algorithm needs
``log* n + O(1)`` rounds and the paper's headline bound is
``O(Delta + log* n)``.
"""

import math

__all__ = ["log_star", "tower"]


def log_star(n: float) -> int:
    """Return ``log* n``: iterations of ``log2`` until the value is < 2.

    Values below 2 (including non-positive values) have ``log* = 0`` by
    convention, matching the definition in Section 2 of the paper.

    >>> [log_star(x) for x in (1, 2, 4, 16, 65536)]
    [0, 1, 2, 3, 4]
    """
    count = 0
    value = float(n)
    while value >= 2.0:
        value = math.log2(value)
        count += 1
    return count


def tower(height: int) -> int:
    """Return the power tower ``2^2^...^2`` of the given height.

    ``tower`` is the (partial) inverse of :func:`log_star`:
    ``log_star(tower(h)) == h`` for small ``h``.  Useful in tests that probe
    the boundaries of the ``log*`` regimes.

    >>> [tower(h) for h in range(5)]
    [1, 2, 4, 16, 65536]
    """
    if height < 0:
        raise ValueError("tower height must be non-negative")
    value = 1
    for _ in range(height):
        value = 2 ** value
    return value
